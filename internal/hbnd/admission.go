package hbnd

import (
	"errors"
	"net"
	"time"

	"hbn/internal/obs"
	"hbn/internal/serve"
	"hbn/internal/wire"
)

// enqueue admits one batch or sheds it. Shedding is a non-blocking
// decision at the queue: a full queue means the applier is already
// behind by QueueCap batches, and accepting more would turn bounded
// admission latency into unbounded queue growth — the daemon's core
// overload stance is that the client hears "no, retry in ~T" instead.
func (d *Daemon) enqueue(t *task) error {
	d.drainMu.RLock()
	defer d.drainMu.RUnlock()
	if d.draining.Load() {
		return &wire.RemoteError{Code: wire.CodeBusy, Msg: "draining"}
	}
	select {
	case d.queue <- t:
		n := int64(len(d.queue))
		for {
			hw := d.queueHighWater.Load()
			if n <= hw || d.queueHighWater.CompareAndSwap(hw, n) {
				break
			}
		}
		return nil
	default:
		d.shedBatches.Add(1)
		d.shedEvents.Add(int64(len(t.events)))
		// Flight-record the burst, coalesced: only the first shed of each
		// ~10ms window lands an event (a losing CAS means a concurrent
		// shedder already recorded this window).
		if o := d.obsReg(); o != nil {
			now := time.Now().UnixNano()
			if last := d.lastShedNs.Load(); now-last > 10*int64(time.Millisecond) &&
				d.lastShedNs.CompareAndSwap(last, now) {
				o.Flight.RecordAt(now, obs.EvShed, -1,
					int64(len(d.queue)), int64(cap(d.queue)), d.shedBatches.Load())
			}
		}
		return &wire.OverloadedError{
			RetryAfter: d.retryAfter(),
			QueueLen:   len(d.queue),
			QueueCap:   cap(d.queue),
		}
	}
}

// obsReg returns the serving cluster's telemetry registry, or nil while
// in standby (no cluster yet) or with telemetry disabled.
func (d *Daemon) obsReg() *obs.Registry {
	if cl := d.cl; cl != nil {
		return cl.Obs()
	}
	return nil
}

// retryAfter estimates when a shed client should come back: the EWMA
// apply time of recent batches times the queue depth — roughly "when the
// backlog you were rejected behind has cleared". Zero until the first
// batch is measured (the client falls back to its own backoff).
func (d *Daemon) retryAfter() time.Duration {
	per := d.ewmaApplyNs.Load()
	return time.Duration(per*int64(len(d.queue))) * time.Nanosecond
}

// SetApplyDelay injects an artificial per-batch apply delay — the
// fault-injection seam (chaos harness, overload tests) that pins the
// daemon's sustainable throughput to a known value so offered load can
// provably exceed it on hardware of any speed. Zero disables.
func (d *Daemon) SetApplyDelay(delay time.Duration) {
	d.applyDelayNs.Store(int64(delay))
}

// applier is the single sequential apply loop — the daemon's total
// order. It exits when Drain/Close closes the queue, after applying
// everything already admitted (drain semantics: admitted work is never
// dropped, only un-admitted work is shed).
func (d *Daemon) applier() {
	defer close(d.applierDone)
	for t := range d.queue {
		d.applyMu.Lock()
		d.applyOne(t)
		d.applyMu.Unlock()
	}
}

// applyOne applies one admitted batch under applyMu: the deadline gate,
// the cluster call, the tail append, the counters. Expired batches are
// dropped here — after admission, before Cluster.Ingest — so a backlog
// of dead work costs queue slots but never serving capacity.
func (d *Daemon) applyOne(t *task) {
	if !t.deadline.IsZero() && time.Now().After(t.deadline) {
		d.expiredBatches.Add(1)
		d.expiredEvents.Add(int64(len(t.events)))
		t.reply <- taskResult{expired: true}
		return
	}
	t0 := time.Now()
	if delay := d.applyDelayNs.Load(); delay > 0 {
		time.Sleep(time.Duration(delay))
	}
	cost, err := d.cl.Ingest(t.events)
	if err != nil {
		t.reply <- taskResult{err: err}
		return
	}
	elapsed := time.Since(t0).Nanoseconds()
	if old := d.ewmaApplyNs.Load(); old == 0 {
		d.ewmaApplyNs.Store(elapsed)
	} else {
		d.ewmaApplyNs.Store(old - old/8 + elapsed/8)
	}
	// The EWMA's elapsed doubles as the apply-histogram sample — the
	// telemetry costs no extra clock read on the apply path.
	if o := d.obsReg(); o != nil {
		o.Apply.Observe(elapsed)
	}
	seq := d.appliedSeq.Add(1)
	if err := d.tail.AppendBatch(seq, wire.AppendEvents(nil, t.events)); err != nil {
		// The batch IS applied; a tail write failure degrades restart
		// durability, not serving correctness. Log it, keep serving.
		d.cfg.Logf("hbnd: tail append seq %d: %v", seq, err)
	}
	d.acceptedBatches.Add(1)
	d.acceptedEvents.Add(int64(len(t.events)))
	t.reply <- taskResult{cost: cost}
}

// handleConn speaks the protocol on one connection: handshake, then a
// strict request/reply loop. Hostile input anywhere closes the
// connection; per-request failures are typed reply frames.
func (d *Daemon) handleConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(d.cfg.IdleTimeout))
	if err := wire.ReadHeader(conn); err != nil {
		return
	}
	if err := wire.WriteHeader(conn); err != nil {
		return
	}
	var rbuf, wbuf, body []byte
	var events []serve.Request
	for {
		// Per-frame read deadline: a slow-loris client trickling header
		// bytes ties up this goroutine, not the daemon — and is cut off.
		conn.SetDeadline(time.Now().Add(d.cfg.IdleTimeout))
		f, buf, err := wire.ReadFrame(conn, rbuf)
		if err != nil {
			return // EOF, timeout, or corruption: the connection is done
		}
		rbuf = buf

		var rtyp wire.Type
		switch f.Type {
		case wire.TIngest:
			rtyp, body, events = d.handleIngest(f, body, events)
		case wire.TQuery:
			rtyp, body = d.handleQuery(f, body)
		case wire.TStats:
			rtyp, body = wire.TStatsOK, wire.AppendStats(body[:0], d.Stats())
		case wire.TMsgStats:
			rtyp, body = wire.TMsgStatsOK, wire.AppendMsgStats(body[:0], d.MsgStats())
		case wire.TSnapshot:
			rtyp, body = d.handleSnapshot(body)
		case wire.TReconfig:
			rtyp, body = d.handleReconfig(f, body)
		case wire.THandoff:
			rtyp, body = d.handleHandoffCmd(f, body)
		case wire.THandoffBegin:
			// This connection is a primary streaming its state into us.
			if !d.standby.Load() {
				rtyp, body = errReply(body, wire.CodeBadRequest, "not a standby")
				break
			}
			d.receiveHandoff(conn, f, &rbuf, &wbuf)
			return
		default:
			rtyp, body = errReply(body, wire.CodeBadRequest, "unexpected frame "+f.Type.String())
		}

		conn.SetDeadline(time.Now().Add(d.cfg.IdleTimeout))
		if wbuf, err = wire.WriteFrame(conn, rtyp, f.Seq, body, wbuf); err != nil {
			return
		}
	}
}

func errReply(body []byte, code byte, msg string) (wire.Type, []byte) {
	return wire.TError, wire.AppendError(body[:0], code, msg)
}

// errorReply maps an internal error onto the right reply frame.
func errorReply(body []byte, err error) (wire.Type, []byte) {
	var oe *wire.OverloadedError
	if errors.As(err, &oe) {
		return wire.TOverloaded, wire.AppendOverloaded(body[:0], oe.RetryAfter, oe.QueueLen, oe.QueueCap)
	}
	var re *wire.RemoteError
	if errors.As(err, &re) {
		return wire.TError, wire.AppendError(body[:0], re.Code, re.Msg)
	}
	switch {
	case errors.Is(err, serve.ErrReconfigInProgress):
		return errReply(body, wire.CodeBusy, err.Error())
	case errors.Is(err, serve.ErrClosed):
		return errReply(body, wire.CodeBusy, err.Error())
	default:
		return errReply(body, wire.CodeInternal, err.Error())
	}
}

func (d *Daemon) handleIngest(f wire.Frame, body []byte, events []serve.Request) (wire.Type, []byte, []serve.Request) {
	if d.standby.Load() {
		t, b := errReply(body, wire.CodeStandby, "standby: not serving")
		return t, b, events
	}
	if d.retired.Load() {
		t, b := errReply(body, wire.CodeStandby, "retired: state handed off")
		return t, b, events
	}
	budget, evs, err := wire.ParseIngestBody(f.Body, events)
	if err != nil {
		t, b := errReply(body, wire.CodeBadRequest, err.Error())
		return t, b, events
	}
	events = evs
	t := &task{reply: make(chan taskResult, 1)}
	// The applier owns the events until it replies, and the read buffer
	// this batch aliases is reused for the next frame — copy.
	t.events = append(make([]serve.Request, 0, len(evs)), evs...)
	if budget > 0 {
		t.deadline = time.Now().Add(budget)
	}
	if err := d.enqueue(t); err != nil {
		typ, b := errorReply(body, err)
		return typ, b, events
	}
	res := <-t.reply
	switch {
	case res.expired:
		return wire.TExpired, body[:0], events
	case res.err != nil:
		typ, b := errorReply(body, res.err)
		return typ, b, events
	default:
		return wire.TIngestOK, wire.AppendCost(body[:0], res.cost), events
	}
}

func (d *Daemon) handleQuery(f wire.Frame, body []byte) (wire.Type, []byte) {
	if d.standby.Load() {
		return errReply(body, wire.CodeStandby, "standby: not serving")
	}
	x, err := wire.ParseQuery(f.Body)
	if err != nil {
		return errReply(body, wire.CodeBadRequest, err.Error())
	}
	nodes := d.cl.Copies(x)
	if nodes == nil {
		return errReply(body, wire.CodeBadRequest, "object out of range")
	}
	return wire.TQueryOK, wire.AppendNodes(body[:0], nodes)
}

func (d *Daemon) handleSnapshot(body []byte) (wire.Type, []byte) {
	if d.standby.Load() {
		return errReply(body, wire.CodeStandby, "standby: nothing to snapshot")
	}
	res, err := d.snapshotNow()
	if err != nil {
		return errorReply(body, err)
	}
	return wire.TSnapshotOK, wire.AppendSnapshotResult(body[:0], res)
}

func (d *Daemon) handleReconfig(f wire.Frame, body []byte) (wire.Type, []byte) {
	if d.standby.Load() {
		return errReply(body, wire.CodeStandby, "standby: not serving")
	}
	req, err := wire.ParseReconfig(f.Body)
	if err != nil {
		return errReply(body, wire.CodeBadRequest, err.Error())
	}
	res, err := d.reconfigure(req)
	if err != nil {
		return errorReply(body, err)
	}
	return wire.TReconfigOK, wire.AppendReconfigResult(body[:0], res)
}

// drainQueueForHandoff sheds new work and waits for the applier to
// finish everything admitted (the handoff twin of Drain's first half —
// the daemon object stays alive to stream its state).
func (d *Daemon) drainQueueForHandoff() {
	d.drainMu.Lock()
	already := d.draining.Swap(true)
	d.drainMu.Unlock()
	if !already {
		close(d.queue)
	}
	<-d.applierDone
}
