package hbnd

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hbn/internal/wire"
)

// Live handoff: a primary that served traffic hands its state to a warm
// standby over the wire; the promoted standby's serving state is
// bit-identical to an uninterrupted in-process cluster fed the same
// batches, and stays identical through a post-handoff suffix (epoch
// passes included). The retired primary refuses further serving.
func TestHandoffBitIdentity(t *testing.T) {
	primary := startDaemon(t, testConfig(t))
	defer primary.Close()
	standbyCfg := testConfig(t)
	standbyCfg.Standby = true
	standby := startDaemon(t, standbyCfg)
	defer standby.Close()
	ref := refCluster(t)
	defer ref.Close()

	trace := testTrace(6000)
	cl := dialTest(t, primary.Addr())
	ingestBoth(t, cl, ref, trace[:2500], 128)

	hcl, err := wire.Dial(primary.Addr(), wire.ClientOptions{Seed: 5, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer hcl.Close()
	if err := hcl.Handoff(standby.Addr()); err != nil {
		t.Fatal(err)
	}

	// The promoted standby equals the uninterrupted reference exactly.
	compareClusters(t, "after handoff", standby.Cluster(), ref)

	// The retired primary refuses serving.
	if _, err := cl.Ingest(trace[:1], 0); err == nil {
		t.Fatal("retired primary accepted a batch")
	}

	// Serving continues on the standby, bit-identical through the suffix.
	scl := dialTest(t, standby.Addr())
	ingestBoth(t, scl, ref, trace[2500:], 128)
	compareClusters(t, "after suffix on standby", standby.Cluster(), ref)

	// The standby journaled its received state durably: a restart of the
	// standby daemon reproduces it (crash-consistency of the handoff).
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
	standbyCfg.Standby = false
	s2 := startDaemon(t, standbyCfg)
	defer s2.Close()
	compareClusters(t, "standby restarted", s2.Cluster(), ref)
}

// Handoff with a non-trivial tail: traffic lands between the cut and the
// drain (while the image streams), so the standby replays real tail
// frames — the ledger fingerprint still verifies and identity holds.
func TestHandoffWithConcurrentIngest(t *testing.T) {
	primary := startDaemon(t, testConfig(t))
	defer primary.Close()
	standbyCfg := testConfig(t)
	standbyCfg.Standby = true
	standby := startDaemon(t, standbyCfg)
	defer standby.Close()

	trace := testTrace(8000)
	cl := dialTest(t, primary.Addr())
	var prefixEv int64
	for lo := 0; lo < 3000; lo += 128 {
		batch := trace[lo : lo+128]
		if _, err := cl.Ingest(batch, 0); err != nil {
			t.Fatal(err)
		}
		prefixEv += int64(len(batch))
	}

	// Background traffic racing the handoff: batches may be accepted
	// (before the drain) or refused (draining/retired); every accepted
	// batch must survive into the standby.
	var (
		wg          sync.WaitGroup
		acceptedEv  int64
		acceptedErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bcl, err := wire.Dial(primary.Addr(), wire.ClientOptions{Seed: 9, MaxRetries: -1})
		if err != nil {
			acceptedErr = err
			return
		}
		defer bcl.Close()
		for lo := 3000; lo < 6000; lo += 64 {
			_, err := bcl.Ingest(trace[lo:lo+64], 0)
			if err == nil {
				acceptedEv += 64
				continue
			}
			if errors.Is(err, wire.ErrOverloaded) || errors.Is(err, wire.ErrBusy) || errors.Is(err, wire.ErrStandby) {
				continue // shed or refused mid-handoff: never applied
			}
			return // connection torn down by drain — also fine
		}
	}()

	hcl, err := wire.Dial(primary.Addr(), wire.ClientOptions{Seed: 6, Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer hcl.Close()
	if err := hcl.Handoff(standby.Addr()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if acceptedErr != nil {
		t.Fatal(acceptedErr)
	}

	// Every batch the primary acknowledged — including those that raced
	// the handoff — is present in the promoted standby.
	want := prefixEv + acceptedEv
	st := standby.Cluster().Stats()
	if st.Requests != want {
		t.Fatalf("standby serves %d requests, want %d (%d prefix + %d raced)", st.Requests, want, prefixEv, acceptedEv)
	}
	var slSum int64
	for _, v := range standby.Cluster().ServiceLoad() {
		slSum += v
	}
	if slSum+st.DroppedServiceLoad != st.ServiceCost {
		t.Fatalf("ledger on standby: ΣServiceLoad %d + dropped %d != ServiceCost %d",
			slSum, st.DroppedServiceLoad, st.ServiceCost)
	}
}

// A handoff to a dead address fails cleanly and the primary keeps
// serving (the cut and image read happen before any drain).
func TestHandoffToDeadStandbyKeepsServing(t *testing.T) {
	d := startDaemon(t, testConfig(t))
	defer d.Close()
	cl := dialTest(t, d.Addr())
	if _, err := cl.Ingest(testTrace(256), 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Handoff("127.0.0.1:1"); err == nil {
		t.Fatal("handoff to dead address must fail")
	}
	// Still serving: the drain only begins after the standby accepted the
	// image stream.
	if _, err := cl.Ingest(testTrace(64), 0); err != nil {
		t.Fatalf("primary stopped serving after failed handoff: %v", err)
	}
}
