package hbnd

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbn/internal/wire"
)

// At roughly 2× sustainable offered load — more unthrottled clients than
// the queue holds, each resubmitting without backoff — the daemon sheds
// with the typed overload error instead of queueing without bound, the
// latency of ACCEPTED requests stays bounded by the queue depth (the
// shed-vs-queue argument: p99 ≈ QueueCap × apply time, not offered-load
// dependent), and the conservation ledger holds exactly: the cluster
// served precisely the accepted events, and ΣServiceLoad + dropped
// equals the sum of acknowledged batch costs.
func TestDaemonOverloadShedsExactly(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueCap = 2
	d := startDaemon(t, cfg)
	defer d.Close()
	// On loopback the raw applier outruns socket round trips, so genuine
	// overload never forms; stretch each apply so the sustainable rate is
	// known and the 8 unthrottled clients provably exceed it.
	d.SetApplyDelay(2 * time.Millisecond)

	const (
		clients = 8
		rounds  = 60
		batch   = 512
	)
	trace := testTrace(clients * rounds * batch)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		costSum   atomic.Int64
		accepted  atomic.Int64
		shed      atomic.Int64
		otherErr  atomic.Int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(d.Addr(), wire.ClientOptions{Seed: int64(c + 1), MaxRetries: -1})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for r := 0; r < rounds; r++ {
				lo := (c*rounds + r) * batch
				ev := trace[lo : lo+batch]
				t0 := time.Now()
				cost, err := cl.Ingest(ev, 0)
				el := time.Since(t0)
				switch {
				case err == nil:
					costSum.Add(cost)
					accepted.Add(int64(len(ev)))
					mu.Lock()
					latencies = append(latencies, el)
					mu.Unlock()
				case errors.Is(err, wire.ErrOverloaded):
					shed.Add(int64(len(ev)))
				default:
					otherErr.Add(1)
					t.Errorf("client %d round %d: %v", c, r, err)
				}
			}
		}(c)
	}
	wg.Wait()
	if otherErr.Load() > 0 {
		t.FailNow()
	}

	st := d.Stats()
	t.Logf("accepted %d events, shed %d; queue high water %d/%d; %d epochs",
		st.AcceptedEvents, st.ShedEvents, st.QueueHighWater, st.QueueCap, st.Epochs)

	// Overload must actually have occurred (8 clients vs a 2-deep queue)
	// and must be visible as typed sheds, not hidden queueing.
	if shed.Load() == 0 || st.ShedEvents == 0 {
		t.Fatal("no sheds under 4× queue-depth concurrent load")
	}
	if st.ShedEvents != shed.Load() {
		t.Fatalf("daemon counted %d shed events, clients saw %d", st.ShedEvents, shed.Load())
	}
	if st.QueueHighWater > st.QueueCap {
		t.Fatalf("queue grew past its cap: %d > %d", st.QueueHighWater, st.QueueCap)
	}

	// Conservation ledger, exact: the cluster served exactly the accepted
	// events; ΣServiceLoad + dropped == ServiceCost == Σ acknowledged
	// batch costs. Shed work left no trace in the cluster.
	if st.Requests != accepted.Load() || st.AcceptedEvents != accepted.Load() {
		t.Fatalf("cluster served %d, daemon accepted %d, clients acked %d",
			st.Requests, st.AcceptedEvents, accepted.Load())
	}
	if st.ServiceCost != costSum.Load() {
		t.Fatalf("ServiceCost %d != Σ acknowledged costs %d", st.ServiceCost, costSum.Load())
	}
	if st.ServiceLoadSum+st.DroppedServiceLoad != st.ServiceCost {
		t.Fatalf("ΣServiceLoad %d + dropped %d != ServiceCost %d",
			st.ServiceLoadSum, st.DroppedServiceLoad, st.ServiceCost)
	}

	// Accepted-request p99 is bounded: an accepted batch waits behind at
	// most QueueCap applies plus its own (plus an epoch pass). The bound
	// is deliberately loose for CI noise — the point is that it does not
	// scale with the 8× offered load, which queueing would make it do.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 2*time.Second {
		t.Fatalf("accepted-request p99 %v exceeds bound", p99)
	}
}

// Retry-after hints become non-zero once the applier has measured apply
// time, and shed replies carry the queue state.
func TestOverloadReplyCarriesHint(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueCap = 1
	d := startDaemon(t, cfg)
	defer d.Close()
	cl := dialTest(t, d.Addr())

	// Measure an apply to warm the EWMA, then stretch applies so the
	// applier is provably busy while we overflow the queue. (The applier
	// POPS a task before applying it, so blocking the applier alone empties
	// the queue — it takes one in-flight batch AND one queued batch to make
	// a cap-1 queue reject the third.)
	if _, err := cl.Ingest(testTrace(256), 0); err != nil {
		t.Fatal(err)
	}
	d.SetApplyDelay(300 * time.Millisecond)

	bg := func(seed int64) chan error {
		ch := make(chan error, 1)
		go func() {
			c, err := wire.Dial(d.Addr(), wire.ClientOptions{Seed: seed, Timeout: 10 * time.Second})
			if err != nil {
				ch <- err
				return
			}
			defer c.Close()
			_, err = c.Ingest(testTrace(8), 0)
			ch <- err
		}()
		return ch
	}
	first := bg(2)
	time.Sleep(50 * time.Millisecond) // first batch is now inside the 300ms apply
	second := bg(3)
	// Wait until the second batch occupies the queue slot.
	for i := 0; len(d.queue) == 0 && i < 200; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(d.queue) != 1 {
		t.Fatal("queue never filled behind the stretched apply")
	}
	cl3, err := wire.Dial(d.Addr(), wire.ClientOptions{Seed: 4, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	_, err = cl3.Ingest(testTrace(8), 0)

	var oe *wire.OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OverloadedError", err)
	}
	if oe.QueueCap != 1 || oe.QueueLen != 1 {
		t.Fatalf("overload reply queue state %d/%d, want 1/1", oe.QueueLen, oe.QueueCap)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after hint %v, want > 0 after a measured apply", oe.RetryAfter)
	}
	if err := <-first; err != nil {
		t.Fatalf("first background batch: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued background batch: %v", err)
	}
}
