package nphard

import (
	"math/rand"
	"testing"

	"hbn/internal/opt"
	"hbn/internal/placement"
	"hbn/internal/ratio"
	"hbn/internal/tree"
)

func TestSolvableDP(t *testing.T) {
	cases := []struct {
		items []int64
		want  bool
	}{
		{[]int64{1, 1}, true},
		{[]int64{1, 2}, false}, // odd sum
		{[]int64{3, 1, 1, 2, 2, 1}, true},
		{[]int64{2, 2, 2}, false},
		{[]int64{100, 1, 99}, true},
		{[]int64{8, 2, 2, 2}, false}, // dominant item, even sum
		{[]int64{5, 5, 5, 5}, true},
		{[]int64{7, 3, 2}, false}, // even sum 12, but no subset hits 6
	}
	for _, c := range cases {
		in := Instance{Items: c.items}
		if got := in.Solvable(); got != c.want {
			t.Errorf("Solvable(%v) = %v, want %v", c.items, got, c.want)
		}
	}
}

func TestSolvableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		items := make([]int64, n)
		for i := range items {
			items[i] = 1 + rng.Int63n(12)
		}
		in := Instance{Items: items}
		// Brute force over all subsets.
		sum := in.Sum()
		want := false
		if sum%2 == 0 {
			for mask := 0; mask < 1<<n; mask++ {
				var s int64
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						s += items[i]
					}
				}
				if s == sum/2 {
					want = true
					break
				}
			}
		}
		if got := in.Solvable(); got != want {
			t.Fatalf("trial %d: Solvable(%v) = %v, brute force says %v", trial, items, got, want)
		}
	}
}

func TestWitnessSumsToHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		in := RandomSolvable(rng, 4+rng.Intn(8), 20)
		subset := in.Witness()
		if subset == nil {
			t.Fatalf("trial %d: no witness for solvable instance %v", trial, in.Items)
		}
		var s int64
		seen := map[int]bool{}
		for _, i := range subset {
			if seen[i] {
				t.Fatalf("trial %d: witness reuses item %d", trial, i)
			}
			seen[i] = true
			s += in.Items[i]
		}
		if s != in.Sum()/2 {
			t.Fatalf("trial %d: witness sums to %d, want %d", trial, s, in.Sum()/2)
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 50; trial++ {
		solvable := RandomSolvable(rng, 6, 15)
		if !solvable.Solvable() {
			t.Fatalf("RandomSolvable produced unsolvable %v", solvable.Items)
		}
		if solvable.Sum()%2 != 0 {
			t.Fatal("odd sum")
		}
		unsolvable := RandomUnsolvable(rng, 6, 15)
		if unsolvable.Solvable() {
			t.Fatalf("RandomUnsolvable produced solvable %v", unsolvable.Items)
		}
		if unsolvable.Sum()%2 != 0 {
			t.Fatal("gadget requires an even sum even for unsolvable instances")
		}
	}
}

func TestGadgetShape(t *testing.T) {
	in := Instance{Items: []int64{3, 1, 2, 2}}
	tr, w, k, err := Gadget(in)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	if tr.NumLeaves() != 4 || tr.Len() != 5 {
		t.Fatal("gadget is not the 4-leaf star")
	}
	if err := tr.ValidateHBN(); err != nil {
		t.Fatal(err)
	}
	if err := w.ValidateHBN(tr); err != nil {
		t.Fatal(err)
	}
	if w.NumObjects() != 5 {
		t.Fatalf("objects = %d, want n+1 = 5", w.NumObjects())
	}
	// y's rates per the reduction.
	if got := w.At(4, GadgetA).Writes; got != 4*k+1 {
		t.Fatalf("hw(a,y) = %d, want %d", got, 4*k+1)
	}
	if got := w.At(4, GadgetB).Writes; got != 2*k {
		t.Fatalf("hw(b,y) = %d", got)
	}
	// x_i rates: k_i on every leaf.
	for i, ki := range in.Items {
		for _, v := range []tree.NodeID{GadgetA, GadgetB, GadgetS, GadgetSBar} {
			if got := w.At(i, v).Writes; got != ki {
				t.Fatalf("hw(%d, x_%d) = %d, want %d", v, i, got, ki)
			}
		}
	}
	if _, _, _, err := Gadget(Instance{Items: []int64{1, 2}}); err == nil {
		t.Fatal("odd-sum instance accepted")
	}
}

// The witness placement from the proof achieves congestion exactly 4k.
func TestWitnessPlacementAchieves4k(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 30; trial++ {
		in := RandomSolvable(rng, 4+rng.Intn(6), 12)
		tr, w, k, err := Gadget(in)
		if err != nil {
			t.Fatal(err)
		}
		hosts := WitnessPlacement(in, in.Witness())
		copies := make([][]tree.NodeID, w.NumObjects())
		for x, h := range hosts {
			copies[x] = []tree.NodeID{h}
		}
		p, err := placement.NearestAssignment(tr, w, copies)
		if err != nil {
			t.Fatal(err)
		}
		rep := placement.Evaluate(tr, p)
		if !rep.Congestion.Eq(ratio.New(4*k, 1)) {
			t.Fatalf("trial %d: witness congestion = %v, want %d", trial, rep.Congestion, 4*k)
		}
	}
}

// Theorem 2.1, both directions, against the exact solver: optimal
// congestion equals 4k iff the PARTITION instance is solvable, and
// strictly exceeds 4k otherwise.
func TestReductionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	lim := opt.Limits{MaxHosts: 4, MaxRequesters: 4, MaxConfigs: 100000, NonRedundant: true}
	check := func(in Instance, wantSolvable bool) {
		t.Helper()
		tr, w, k, err := Gadget(in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := opt.ExactCongestion(tr, w, lim, ratio.R{})
		if err != nil {
			t.Fatal(err)
		}
		threshold := ratio.New(4*k, 1)
		if wantSolvable {
			if !sol.Congestion.Eq(threshold) {
				t.Fatalf("solvable %v: optimum %v ≠ 4k = %d", in.Items, sol.Congestion, 4*k)
			}
		} else {
			if !threshold.Less(sol.Congestion) {
				t.Fatalf("unsolvable %v: optimum %v ≤ 4k = %d", in.Items, sol.Congestion, 4*k)
			}
		}
	}
	for trial := 0; trial < 12; trial++ {
		check(RandomSolvable(rng, 3+rng.Intn(4), 8), true)
		check(RandomUnsolvable(rng, 3+rng.Intn(4), 8), false)
	}
	// A handcrafted pair.
	check(Instance{Items: []int64{2, 2}}, true)
	check(Instance{Items: []int64{4, 1, 1}}, false)
}

// The redundant search agrees on tiny instances (all requests are writes,
// so non-redundant search is exact — verify that claim empirically).
func TestRedundantSearchAgreesOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for trial := 0; trial < 5; trial++ {
		in := RandomSolvable(rng, 3, 4)
		tr, w, _, err := Gadget(in)
		if err != nil {
			t.Fatal(err)
		}
		nrLim := opt.Limits{MaxHosts: 4, MaxRequesters: 4, MaxConfigs: 100000, NonRedundant: true}
		fullLim := opt.Limits{MaxHosts: 4, MaxRequesters: 4, MaxConfigs: 2000000}
		nr, err := opt.ExactCongestion(tr, w, nrLim, ratio.R{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := opt.ExactCongestion(tr, w, fullLim, nr.Congestion)
		if err != nil {
			t.Fatal(err)
		}
		if !nr.Congestion.Eq(full.Congestion) {
			t.Fatalf("trial %d: non-redundant %v ≠ redundant %v", trial, nr.Congestion, full.Congestion)
		}
	}
}
