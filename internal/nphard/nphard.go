// Package nphard builds the Theorem 2.1 reduction: a PARTITION instance
// k_1,...,k_n with Σk_i = 2k is encoded as a static placement problem on a
// 4-ary tree of height 1 (Figure 3) such that a leaf-only placement of
// congestion at most 4k exists iff the instance has a subset summing to k.
//
// The package also provides a pseudo-polynomial subset-sum solver (the
// ground truth the experiment compares the measured optimum against) and
// generators for solvable and unsolvable instances.
package nphard

import (
	"fmt"
	"math/rand"

	"hbn/internal/tree"
	"hbn/internal/workload"
)

// Instance is a PARTITION instance: positive integers to split into two
// halves of equal sum.
type Instance struct {
	Items []int64
}

// Sum returns the total of all items.
func (in Instance) Sum() int64 {
	var s int64
	for _, k := range in.Items {
		s += k
	}
	return s
}

// Solvable decides PARTITION exactly with the classic pseudo-polynomial
// subset-sum dynamic program (bitset over reachable sums).
func (in Instance) Solvable() bool {
	sum := in.Sum()
	if sum%2 != 0 {
		return false
	}
	target := sum / 2
	words := int(target/64) + 1
	reach := make([]uint64, words)
	reach[0] = 1 // sum 0
	for _, k := range in.Items {
		if k < 0 {
			panic("nphard: negative item")
		}
		if k > target {
			continue // can never participate in a half
		}
		shiftWords := int(k / 64)
		shiftBits := uint(k % 64)
		for w := words - 1; w >= 0; w-- {
			var v uint64
			if w-shiftWords >= 0 {
				v = reach[w-shiftWords] << shiftBits
				if shiftBits > 0 && w-shiftWords-1 >= 0 {
					v |= reach[w-shiftWords-1] >> (64 - shiftBits)
				}
			}
			reach[w] |= v
		}
	}
	return reach[target/64]&(1<<uint(target%64)) != 0
}

// Witness returns a subset with sum exactly half the total, or nil when
// the instance is unsolvable.
func (in Instance) Witness() []int {
	sum := in.Sum()
	if sum%2 != 0 {
		return nil
	}
	target := sum / 2
	// parent[s] = index of the item that first reached sum s.
	parent := make([]int, target+1)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = len(in.Items) // sentinel: reached with no item
	for idx, k := range in.Items {
		if k > target {
			continue
		}
		for s := target; s >= k; s-- {
			if parent[s] == -1 && parent[s-k] != -1 && parent[s-k] != idx {
				parent[s] = idx
			}
		}
	}
	if parent[target] == -1 {
		return nil
	}
	var subset []int
	for s := target; s > 0; {
		idx := parent[s]
		subset = append(subset, idx)
		s -= in.Items[idx]
	}
	return subset
}

// RandomSolvable returns an instance with a planted partition: items are
// generated in pairs summing to the same value on both sides.
func RandomSolvable(rng *rand.Rand, n int, maxVal int64) Instance {
	if n < 2 {
		panic("nphard: need at least 2 items")
	}
	items := make([]int64, 0, n)
	// Build two halves with equal sums: fill one half randomly, then echo
	// its total into the other half in random-sized chunks.
	half := n / 2
	var sumA int64
	for i := 0; i < half; i++ {
		v := 1 + rng.Int63n(maxVal)
		items = append(items, v)
		sumA += v
	}
	remaining := sumA
	for i := half; i < n-1 && remaining > int64(n-i); i++ {
		v := 1 + rng.Int63n(remaining-int64(n-i-1))
		items = append(items, v)
		remaining -= v
	}
	if remaining > 0 {
		items = append(items, remaining)
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return Instance{Items: items}
}

// RandomUnsolvable returns an instance with even total sum but no equal
// partition: one item exceeds half of the total.
func RandomUnsolvable(rng *rand.Rand, n int, maxVal int64) Instance {
	if n < 2 {
		panic("nphard: need at least 2 items")
	}
	items := make([]int64, n)
	var rest int64
	for i := 1; i < n; i++ {
		items[i] = 1 + rng.Int63n(maxVal)
		rest += items[i]
	}
	// Dominant item: rest + 2 keeps the total even and strictly above any
	// possible balance.
	items[0] = rest + 2
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return Instance{Items: items}
}

// Gadget node layout (Figure 3): node 0 is the bus, then the four leaves.
const (
	GadgetBus  tree.NodeID = 0
	GadgetA    tree.NodeID = 1
	GadgetB    tree.NodeID = 2
	GadgetS    tree.NodeID = 3
	GadgetSBar tree.NodeID = 4
)

// Gadget encodes the instance as the paper's placement problem. It returns
// the 4-leaf star, the all-write workload (objects 0..n-1 are x_1..x_n and
// object n is y), and the threshold value k (half the item sum). The
// instance sum must be even and positive.
func Gadget(in Instance) (*tree.Tree, *workload.W, int64, error) {
	sum := in.Sum()
	if sum <= 0 || sum%2 != 0 {
		return nil, nil, 0, fmt.Errorf("nphard: gadget needs a positive even item sum, got %d", sum)
	}
	k := sum / 2
	b := tree.NewBuilder()
	// The bus bandwidth is "sufficiently large such that the load on the
	// edges is dominating": total load is below 16k+2, so 16k+2 suffices.
	bus := b.AddBus("bus", 16*k+2)
	names := []string{"a", "b", "s", "sbar"}
	for _, nm := range names {
		p := b.AddProcessor(nm)
		b.Connect(bus, p, 1)
	}
	t, err := b.Build()
	if err != nil {
		return nil, nil, 0, err
	}
	n := len(in.Items)
	w := workload.New(n+1, t.Len())
	for i, ki := range in.Items {
		for _, v := range []tree.NodeID{GadgetA, GadgetB, GadgetS, GadgetSBar} {
			w.AddWrites(i, v, ki)
		}
	}
	w.AddWrites(n, GadgetA, 4*k+1)
	w.AddWrites(n, GadgetB, 2*k)
	return t, w, k, nil
}

// WitnessPlacement returns, for a solvable instance and its witness
// subset, the copy host for every object in the congestion-4k placement of
// the proof: x_i goes to s if i ∈ subset, else to s̄; y goes to a. Object
// index n (== len(items)) is y.
func WitnessPlacement(in Instance, subset []int) []tree.NodeID {
	inSet := make(map[int]bool, len(subset))
	for _, i := range subset {
		inSet[i] = true
	}
	hosts := make([]tree.NodeID, len(in.Items)+1)
	for i := range in.Items {
		if inSet[i] {
			hosts[i] = GadgetS
		} else {
			hosts[i] = GadgetSBar
		}
	}
	hosts[len(in.Items)] = GadgetA
	return hosts
}
