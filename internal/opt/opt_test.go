package opt

import (
	"math/rand"
	"testing"

	"hbn/internal/placement"
	"hbn/internal/ratio"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

func TestExactSingleObjectSingleReader(t *testing.T) {
	// One reader: optimum is a local copy, congestion 0.
	tr := tree.Star(3, 10)
	w := workload.New(1, tr.Len())
	w.AddReads(0, 1, 100)
	sol, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Congestion.Num != 0 {
		t.Fatalf("congestion = %v, want 0", sol.Congestion)
	}
	if err := sol.Placement.Validate(tr, w); err != nil {
		t.Fatal(err)
	}
}

func TestExactKnownOptimum(t *testing.T) {
	// Two writers with 3 and 5 writes on a star. One copy: either on the
	// heavy leaf (edge load 3 on the light path) or the light leaf (load
	// 5). Two copies: every write pays the Steiner tree (κ=8 on both
	// edges). Optimum: copy on the heavy writer's leaf, congestion 3.
	tr := tree.Star(3, 1000)
	w := workload.New(1, tr.Len())
	w.AddWrites(0, 1, 5)
	w.AddWrites(0, 2, 3)
	sol, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Congestion.Eq(ratio.New(3, 1)) {
		t.Fatalf("congestion = %v, want 3", sol.Congestion)
	}
	nodes := sol.Placement.CopyNodes(0)
	if len(nodes) != 1 || nodes[0] != 1 {
		t.Fatalf("copies = %v, want [1]", nodes)
	}
}

func TestExactPrefersReplicationForReads(t *testing.T) {
	// Two heavy readers, one rare writer: replication wins.
	tr := tree.Star(3, 1000)
	w := workload.New(1, tr.Len())
	w.AddReads(0, 1, 50)
	w.AddReads(0, 2, 50)
	w.AddWrites(0, 3, 1)
	sol, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
	if err != nil {
		t.Fatal(err)
	}
	// Copies on 1 and 2: reads local; writer pays path (1) + Steiner κ=1
	// on edges e1,e2 (+ its own edge for the path): edge loads ≤ 2.
	if ratio.New(2, 1).Less(sol.Congestion) {
		t.Fatalf("congestion = %v, want ≤ 2", sol.Congestion)
	}
	if len(sol.Placement.CopyNodes(0)) < 2 {
		t.Fatalf("expected replication, got %v", sol.Placement.CopyNodes(0))
	}
}

func TestExactRespectsLimits(t *testing.T) {
	tr := tree.Star(8, 10)
	w := workload.New(1, tr.Len())
	for _, l := range tr.Leaves() {
		w.AddReads(0, l, 1)
	}
	if _, err := ExactCongestion(tr, w, Limits{MaxHosts: 4, MaxRequesters: 8, MaxConfigs: 1000}, ratio.R{}); err == nil {
		t.Fatal("host limit not enforced")
	}
	if _, err := ExactCongestion(tr, w, Limits{MaxHosts: 8, MaxRequesters: 4, MaxConfigs: 1000}, ratio.R{}); err == nil {
		t.Fatal("requester limit not enforced")
	}
}

func TestExactZeroDemand(t *testing.T) {
	tr := tree.Star(3, 10)
	w := workload.New(2, tr.Len())
	sol, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Congestion.Num != 0 {
		t.Fatal("nonzero congestion for zero demand")
	}
}

func TestNonRedundantMatchesFullSearchOnWriteOnly(t *testing.T) {
	// For all-write workloads non-redundant search is exact (paper §2);
	// cross-check both solvers agree.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		tr := tree.Star(4, 1000)
		w := workload.WriteOnly(rng, tr, 2, workload.GenConfig{MaxWrites: 6, Density: 0.8})
		full, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
		if err != nil {
			t.Fatal(err)
		}
		lim := DefaultLimits
		lim.NonRedundant = true
		nr, err := ExactCongestion(tr, w, lim, ratio.R{})
		if err != nil {
			t.Fatal(err)
		}
		if !full.Congestion.Eq(nr.Congestion) {
			t.Fatalf("trial %d: full %v ≠ non-redundant %v", trial, full.Congestion, nr.Congestion)
		}
	}
}

func TestSeededUpperBoundGivesSameOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	tr := tree.Star(4, 1000)
	w := workload.Uniform(rng, tr, 2, workload.GenConfig{MaxReads: 6, MaxWrites: 3, Density: 0.8})
	unseeded, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed with a deliberately loose feasible bound.
	loose := ratio.New(unseeded.Congestion.Num*10+1, max64(1, unseeded.Congestion.Den))
	seeded, err := ExactCongestion(tr, w, DefaultLimits, loose)
	if err != nil {
		t.Fatal(err)
	}
	if !seeded.Congestion.Eq(unseeded.Congestion) {
		t.Fatalf("seeded %v ≠ unseeded %v", seeded.Congestion, unseeded.Congestion)
	}
	// Seed with the exact optimum itself: a witness must still be found.
	tight, err := ExactCongestion(tr, w, DefaultLimits, unseeded.Congestion)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Congestion.Eq(unseeded.Congestion) {
		t.Fatalf("tight-seeded %v ≠ unseeded %v", tight.Congestion, unseeded.Congestion)
	}
}

func TestExactSolutionPlacementMatchesReportedCongestion(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		tr := tree.Star(4, 4)
		w := workload.Uniform(rng, tr, 2, workload.GenConfig{MaxReads: 5, MaxWrites: 3, Density: 0.7})
		sol, err := ExactCongestion(tr, w, DefaultLimits, ratio.R{})
		if err != nil {
			t.Fatal(err)
		}
		rep := placement.Evaluate(tr, sol.Placement)
		if !rep.Congestion.Eq(sol.Congestion) {
			t.Fatalf("trial %d: reported %v, placement evaluates to %v", trial, sol.Congestion, rep.Congestion)
		}
	}
}

func TestPerEdgeMinLoadsZeroForLocalService(t *testing.T) {
	tr := tree.Star(3, 10)
	w := workload.New(1, tr.Len())
	w.AddReads(0, 1, 9)
	mins, err := PerEdgeMinLoads(tr, w, 0, DefaultLimits)
	if err != nil {
		t.Fatal(err)
	}
	for e, m := range mins {
		if m != 0 {
			t.Fatalf("edge %d min = %d, want 0 (local copy possible)", e, m)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
