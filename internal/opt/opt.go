// Package opt provides exact reference solvers for small instances of the
// static data management problem, used to certify the experiments:
//
//   - ExactCongestion: the true optimum congestion over all (possibly
//     redundant) leaf-only placements and all reference assignments, by
//     exhaustive enumeration with branch-and-bound (the comparator for the
//     7-approximation, Theorem 4.3, and for the NP-hardness gadget,
//     Theorem 2.1).
//   - PerEdgeMinLoads: the per-edge minimum load achievable for a single
//     object when copies may also sit on inner nodes (the comparator for
//     the nibble optimality, Theorem 3.1).
//
// The problem is NP-hard (that is the paper's first result), so these
// solvers are exponential by necessity and guarded by explicit size caps.
package opt

import (
	"fmt"
	"sort"
	"strconv"

	"hbn/internal/placement"
	"hbn/internal/ratio"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// Limits cap the exhaustive search.
type Limits struct {
	// MaxHosts caps the number of candidate host nodes (leaves, or all
	// nodes for PerEdgeMinLoads).
	MaxHosts int
	// MaxRequesters caps the number of distinct requesters per object.
	MaxRequesters int
	// MaxConfigs caps the deduplicated per-object configuration count.
	MaxConfigs int
	// NonRedundant restricts the search to single-copy placements. For
	// write-only workloads this loses no generality (paper, Section 2:
	// every optimal placement is non-redundant when all requests are
	// writes), and it makes much larger instances tractable.
	NonRedundant bool
}

// DefaultLimits is sized for unit tests: exhaustive but quick.
var DefaultLimits = Limits{MaxHosts: 6, MaxRequesters: 6, MaxConfigs: 200000}

// Solution is the result of an exact search.
type Solution struct {
	Congestion ratio.R
	// Placement realizes the optimum (nil when the instance has no
	// demand).
	Placement *placement.P
}

// config is one way to place and serve a single object, reduced to the
// edge-load vector it induces.
type config struct {
	loads  []int64
	copies []tree.NodeID
	ref    []tree.NodeID // requester index -> serving node
	maxRel ratio.R
}

// ExactCongestion computes the optimal leaf-only congestion of (t, w) by
// exhaustive search. upperBound, if valid, seeds the branch-and-bound (any
// feasible congestion works; the extended-nibble result is a good seed).
func ExactCongestion(t *tree.Tree, w *workload.W, lim Limits, upperBound ratio.R) (*Solution, error) {
	hosts := t.Leaves()
	return exact(t, w, lim, upperBound, hosts)
}

func exact(t *tree.Tree, w *workload.W, lim Limits, upperBound ratio.R, hosts []tree.NodeID) (*Solution, error) {
	if len(hosts) > lim.MaxHosts {
		return nil, fmt.Errorf("opt: %d candidate hosts exceed limit %d", len(hosts), lim.MaxHosts)
	}
	r := t.Rooted(0)
	var objCfgs [][]config
	var objIdx []int
	for x := 0; x < w.NumObjects(); x++ {
		reqs := w.Requesters(x)
		if len(reqs) == 0 {
			continue
		}
		if len(reqs) > lim.MaxRequesters {
			return nil, fmt.Errorf("opt: object %d has %d requesters, limit %d", x, len(reqs), lim.MaxRequesters)
		}
		cfgs, err := enumerate(t, r, w, x, reqs, hosts, lim)
		if err != nil {
			return nil, err
		}
		objCfgs = append(objCfgs, cfgs)
		objIdx = append(objIdx, x)
	}
	if len(objCfgs) == 0 {
		return &Solution{Congestion: ratio.Zero, Placement: placement.New(w.NumObjects())}, nil
	}

	// Branch and bound over objects. Objects with fewer configurations
	// first: they constrain the loads early.
	order := make([]int, len(objCfgs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(objCfgs[order[a]]) < len(objCfgs[order[b]]) })

	nE := t.NumEdges()
	acc := make([]int64, nE)
	chosen := make([]int, len(objCfgs))
	best := make([]int, len(objCfgs))
	bestC := upperBound
	found := false
	buses := t.Buses()
	busX2 := make([]int64, t.Len())

	congestionOf := func(loads []int64) ratio.R {
		c := ratio.Zero
		for e := 0; e < nE; e++ {
			c = ratio.Max(c, ratio.New(loads[e], t.EdgeBandwidth(tree.EdgeID(e))))
		}
		for i := range busX2 {
			busX2[i] = 0
		}
		for e := 0; e < nE; e++ {
			u, v := t.Endpoints(tree.EdgeID(e))
			busX2[u] += loads[e]
			busX2[v] += loads[e]
		}
		for _, b := range buses {
			c = ratio.Max(c, ratio.New(busX2[b], 2*t.NodeBandwidth(b)))
		}
		return c
	}

	var dfs func(i int)
	dfs = func(i int) {
		if i == len(order) {
			c := congestionOf(acc)
			if !found || c.Less(bestC) {
				bestC = c
				copy(best, chosen)
				found = true
			}
			return
		}
		oi := order[i]
		for ci, cfg := range objCfgs[oi] {
			// Partial lower bound: the edge congestion of the loads
			// accumulated so far only grows as more objects are placed, so
			// exceeding the incumbent (or matching it, once a witness
			// exists) allows pruning.
			if bestC.Valid() {
				prune := false
				for e := 0; e < nE; e++ {
					l := acc[e] + cfg.loads[e]
					if l == 0 {
						continue
					}
					rel := ratio.New(l, t.EdgeBandwidth(tree.EdgeID(e)))
					if bestC.Less(rel) || (found && rel.Eq(bestC)) {
						prune = true
						break
					}
				}
				if prune {
					continue
				}
			}
			for e := 0; e < nE; e++ {
				acc[e] += cfg.loads[e]
			}
			chosen[oi] = ci
			dfs(i + 1)
			for e := 0; e < nE; e++ {
				acc[e] -= cfg.loads[e]
			}
		}
	}
	dfs(0)
	if !found {
		// The seed upper bound was already optimal or no strictly better
		// solution exists; re-run without a seed to materialize one.
		if upperBound.Valid() {
			return exact(t, w, lim, ratio.R{}, hosts)
		}
		return nil, fmt.Errorf("opt: search found no feasible placement")
	}

	sol := &Solution{Congestion: bestC, Placement: placement.New(w.NumObjects())}
	for i, x := range objIdx {
		cfg := objCfgs[i][best[i]]
		reqs := w.Requesters(x)
		byNode := map[tree.NodeID]*placement.Copy{}
		for _, cn := range cfg.copies {
			byNode[cn] = &placement.Copy{Object: x, Node: cn}
		}
		for ri, req := range reqs {
			a := w.At(x, req)
			c := byNode[cfg.ref[ri]]
			c.Shares = append(c.Shares, placement.Share{Node: req, Reads: a.Reads, Writes: a.Writes})
		}
		for _, cn := range cfg.copies {
			sol.Placement.Add(byNode[cn])
		}
	}
	return sol, nil
}

// enumerate lists every deduplicated (copy set, assignment) configuration
// for object x hosted on `hosts`.
func enumerate(t *tree.Tree, r *tree.Rooted, w *workload.W, x int, reqs, hosts []tree.NodeID, lim Limits) ([]config, error) {
	kappa := w.Kappa(x)
	nE := t.NumEdges()
	seen := map[string]bool{}
	var out []config

	counts := make([]int64, len(reqs))
	for i, req := range reqs {
		counts[i] = w.At(x, req).Total()
	}

	addConfig := func(subset []tree.NodeID, ref []tree.NodeID) {
		loads := make([]int64, nE)
		for i, req := range reqs {
			r.VisitPath(req, ref[i], func(e tree.EdgeID, _ tree.Dir) {
				loads[e] += counts[i]
			})
		}
		if kappa > 0 && len(subset) > 1 {
			mask := make([]bool, nE)
			tree.SteinerEdgesInto(r, subset, mask)
			for e, in := range mask {
				if in {
					loads[e] += kappa
				}
			}
		}
		key := loadKey(loads)
		if seen[key] {
			return
		}
		seen[key] = true
		cfg := config{loads: loads, copies: append([]tree.NodeID(nil), subset...), ref: append([]tree.NodeID(nil), ref...), maxRel: ratio.Zero}
		for e := 0; e < nE; e++ {
			cfg.maxRel = ratio.Max(cfg.maxRel, ratio.New(loads[e], t.EdgeBandwidth(tree.EdgeID(e))))
		}
		out = append(out, cfg)
	}

	maxMask := 1 << len(hosts)
	for mask := 1; mask < maxMask; mask++ {
		var subset []tree.NodeID
		for i := 0; i < len(hosts); i++ {
			if mask&(1<<i) != 0 {
				subset = append(subset, hosts[i])
			}
		}
		if lim.NonRedundant && len(subset) > 1 {
			continue
		}
		// Odometer over assignments requester -> subset member.
		ref := make([]tree.NodeID, len(reqs))
		idx := make([]int, len(reqs))
		for {
			used := map[tree.NodeID]bool{}
			for i := range reqs {
				ref[i] = subset[idx[i]]
				used[ref[i]] = true
			}
			// With κ>0, a copy serving nobody only enlarges the Steiner
			// tree: strictly dominated, skip.
			dominated := false
			if kappa > 0 && len(subset) > 1 {
				for _, s := range subset {
					if !used[s] {
						dominated = true
						break
					}
				}
			}
			if !dominated {
				addConfig(subset, ref)
				if len(out) > lim.MaxConfigs {
					return nil, fmt.Errorf("opt: object %d exceeds %d configurations", x, lim.MaxConfigs)
				}
			}
			// Advance odometer.
			k := 0
			for ; k < len(idx); k++ {
				idx[k]++
				if idx[k] < len(subset) {
					break
				}
				idx[k] = 0
			}
			if k == len(idx) {
				break
			}
		}
	}
	// Cheap configurations first: improves the branch-and-bound ordering.
	sort.Slice(out, func(a, b int) bool { return out[a].maxRel.Less(out[b].maxRel) })
	return out, nil
}

func loadKey(loads []int64) string {
	buf := make([]byte, 0, len(loads)*4)
	for _, l := range loads {
		buf = strconv.AppendInt(buf, l, 36)
		buf = append(buf, ',')
	}
	return string(buf)
}

// PerEdgeMinLoads returns, for object x considered alone and with copies
// allowed on EVERY node (the tree model of [10]), the minimum achievable
// load of each edge over all placements and assignments. Theorem 3.1
// asserts the nibble placement attains all these minima simultaneously.
func PerEdgeMinLoads(t *tree.Tree, w *workload.W, x int, lim Limits) ([]int64, error) {
	hosts := make([]tree.NodeID, t.Len())
	for i := range hosts {
		hosts[i] = tree.NodeID(i)
	}
	if len(hosts) > lim.MaxHosts {
		return nil, fmt.Errorf("opt: %d nodes exceed host limit %d", len(hosts), lim.MaxHosts)
	}
	reqs := w.Requesters(x)
	if len(reqs) == 0 {
		return make([]int64, t.NumEdges()), nil
	}
	if len(reqs) > lim.MaxRequesters {
		return nil, fmt.Errorf("opt: object %d has %d requesters, limit %d", x, len(reqs), lim.MaxRequesters)
	}
	r := t.Rooted(0)
	cfgs, err := enumerate(t, r, w, x, reqs, hosts, lim)
	if err != nil {
		return nil, err
	}
	mins := make([]int64, t.NumEdges())
	for e := range mins {
		mins[e] = -1
	}
	for _, cfg := range cfgs {
		for e, l := range cfg.loads {
			if mins[e] < 0 || l < mins[e] {
				mins[e] = l
			}
		}
	}
	return mins, nil
}
