package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hbn/internal/snapshot"
	"hbn/internal/topo"
	"hbn/internal/workload"
)

// compareClusters asserts two clusters are observationally identical:
// stats, per-edge aggregate and service loads, every object's copy set,
// and the epoch log. blankTimes strips wall-clock fields (meaningful when
// the two clusters ran their epochs independently; at-cut comparisons
// pass false because restore carries times verbatim).
func compareClusters(t *testing.T, label string, a, b *Cluster, numObjects int, blankTimes bool) {
	t.Helper()
	sa, sb := a.Stats(), b.Stats()
	if blankTimes {
		sa.ResolveTime, sb.ResolveTime = 0, 0
	}
	if sa != sb {
		t.Fatalf("%s: stats differ:\n  a: %+v\n  b: %+v", label, sa, sb)
	}
	if !reflect.DeepEqual(a.EdgeLoad(), b.EdgeLoad()) {
		t.Fatalf("%s: edge loads differ", label)
	}
	if !reflect.DeepEqual(a.ServiceLoad(), b.ServiceLoad()) {
		t.Fatalf("%s: service loads differ", label)
	}
	for x := 0; x < numObjects; x++ {
		if !reflect.DeepEqual(a.Copies(x), b.Copies(x)) {
			t.Fatalf("%s: object %d copies differ: %v vs %v", label, x, a.Copies(x), b.Copies(x))
		}
	}
	la, lb := a.EpochLog(), b.EpochLog()
	if blankTimes {
		for i := range la {
			la[i].ResolveNs = 0
		}
		for i := range lb {
			lb[i].ResolveNs = 0
		}
	}
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("%s: epoch logs differ:\n  a: %+v\n  b: %+v", label, la, lb)
	}
}

// Snapshot → Restore round-trips the identity across the topology zoo and
// shard counts {1, 4, 64}: the restored cluster equals the source at the
// cut point (stats, aggregate loads, adopted placements — times included,
// they travel in the image), and serving the same trace suffix on both
// keeps them bit-identical through further epoch passes.
func TestSnapshotRestoreIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range testTrees(rng) {
		for _, shards := range []int{1, 4, 64} {
			t.Run(fmt.Sprintf("%s/shards=%d", tc.name, shards), func(t *testing.T) {
				const objects = 48
				trace := workload.DriftingZipf(rand.New(rand.NewSource(7)), tc.tr, objects, 6000, 4, 1.0, 0.07)
				cut := 4000
				c, err := NewCluster(tc.tr, objects, Options{
					Shards: shards, EpochRequests: 900, Threshold: 3, DecayShift: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				ingestAll(t, c, trace[:cut], 256)

				path := filepath.Join(t.TempDir(), "snap.hbn")
				ss, err := c.Snapshot(path)
				if err != nil {
					t.Fatal(err)
				}
				if ss.Seq != 1 || ss.Bytes <= 0 {
					t.Fatalf("bad snapshot stats: %+v", ss)
				}

				r, info, err := Restore(path, RestoreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if info.Fallback || info.Seq != 1 {
					t.Fatalf("bad restore info: %+v", info)
				}
				compareClusters(t, "at cut", c, r, objects, false)

				// Same suffix on both: epoch passes, adoption decisions and
				// threshold dynamics must all line up exactly.
				ingestAll(t, c, trace[cut:], 256)
				ingestAll(t, r, trace[cut:], 256)
				if err := c.ResolveNow(); err != nil {
					t.Fatal(err)
				}
				if err := r.ResolveNow(); err != nil {
					t.Fatal(err)
				}
				compareClusters(t, "after suffix", c, r, objects, true)
			})
		}
	}
}

// A snapshot of the restored cluster is byte-identical to a fresh
// snapshot of the source: the capture itself is deterministic, so
// generation N+1 of a restored lineage matches what the original would
// have written.
func TestSnapshotOfRestoreIsByteIdentical(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr // sci
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 3000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 700, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, c, trace, 256)

	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.hbn")
	if _, err := c.Snapshot(p1); err != nil {
		t.Fatal(err)
	}
	r, _, err := Restore(p1, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "b.hbn")
	p3 := filepath.Join(dir, "c.hbn")
	if _, err := c.Snapshot(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(p3); err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b2, b3) {
		t.Fatalf("snapshots of source and restored cluster differ (%d vs %d bytes)", len(b2), len(b3))
	}
}

// The ingest stall is bounded by the in-memory cut, not the disk write:
// the BeforeWrite hook runs after the gate is released, so an Ingest call
// issued from inside it must succeed (it would deadlock forever if the
// gate were still held), and the measured CutStall stays far below a
// WriteElapsed inflated by the hook's sleep.
func TestSnapshotStall(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 3000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 700, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, c, trace[:2000], 256)

	const sleep = 40 * time.Millisecond
	var hookErr error
	hooked := false
	ss, err := c.SnapshotWith(filepath.Join(t.TempDir(), "snap.hbn"), snapshot.SaveOptions{
		BeforeWrite: func() {
			hooked = true
			_, hookErr = c.Ingest(trace[2000:2200])
			time.Sleep(sleep)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatal("BeforeWrite hook did not run")
	}
	if hookErr != nil {
		t.Fatalf("ingest during the disk write failed: %v", hookErr)
	}
	if ss.WriteElapsed < sleep {
		t.Fatalf("WriteElapsed %v should include the %v hook sleep", ss.WriteElapsed, sleep)
	}
	if ss.CutStall >= ss.WriteElapsed {
		t.Fatalf("cut stall %v not bounded below the write %v", ss.CutStall, ss.WriteElapsed)
	}
	// The hook's requests landed after the cut: they are not in the image.
	r, _, err := Restore(filepath.Join(t.TempDir(), "nope"), RestoreOptions{})
	if err == nil {
		r.Close()
		t.Fatal("restore of a missing path succeeded")
	}
}

// Snapshot and reconfiguration exclude each other through the same
// fail-fast flag: a snapshot attempted mid-roll and a reconfiguration
// attempted mid-snapshot both return ErrReconfigInProgress.
func TestSnapshotReconfigMutualExclusion(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 2000, 2, 1.0, 0.05)
	dir := t.TempDir()

	t.Run("snapshot during roll", func(t *testing.T) {
		c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 500, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 256)
		var rollErr error
		c.rollHook = func(migrated int) {
			if migrated == 1 {
				_, rollErr = c.Snapshot(filepath.Join(dir, "mid.hbn"))
			}
		}
		if _, err := c.ReconfigureRolling(topo.Diff{}); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(rollErr, ErrReconfigInProgress) {
			t.Fatalf("snapshot mid-roll: got %v, want ErrReconfigInProgress", rollErr)
		}
	})

	t.Run("reconfigure during snapshot", func(t *testing.T) {
		c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 500, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 256)
		var recErr error
		_, err = c.SnapshotWith(filepath.Join(dir, "snap.hbn"), snapshot.SaveOptions{
			BeforeWrite: func() { _, recErr = c.Reconfigure(topo.Diff{}) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(recErr, ErrReconfigInProgress) {
			t.Fatalf("reconfigure mid-snapshot: got %v, want ErrReconfigInProgress", recErr)
		}
	})
}

// Restore walks the generation ladder: a damaged primary falls back to
// the retained previous generation; with both generations unusable the
// typed errors distinguish "never written" from "written and damaged".
func TestRestoreFallbackLadder(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 3000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 700, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.hbn")

	ingestAll(t, c, trace[:1500], 256)
	if _, err := c.Snapshot(path); err != nil { // seq 1 → primary
		t.Fatal(err)
	}
	ingestAll(t, c, trace[1500:], 256)
	if _, err := c.Snapshot(path); err != nil { // seq 2 → primary, seq 1 → prev
		t.Fatal(err)
	}

	// Bit-flip the primary: restore lands on generation 1.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, info, err := Restore(path, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fallback || info.Seq != 1 || info.Path != snapshot.PrevPath(path) {
		t.Fatalf("bad fallback info: %+v", info)
	}
	if r.SnapshotSeq() != 1 {
		t.Fatalf("restored seq %d, want 1", r.SnapshotSeq())
	}

	// Both generations damaged: typed corruption, never a panic.
	if err := os.WriteFile(snapshot.PrevPath(path), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(path, RestoreOptions{}); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("both damaged: got %v, want ErrCorrupt", err)
	}

	// Nothing ever written: ErrNoSnapshot (the fresh-start signal).
	if _, _, err := Restore(filepath.Join(t.TempDir(), "never.hbn"), RestoreOptions{}); !errors.Is(err, snapshot.ErrNoSnapshot) {
		t.Fatalf("missing both: got %v, want ErrNoSnapshot", err)
	}
}

// The mutating entry points of a closed cluster all fail with the typed
// ErrClosed sentinel (satellite: replaces the old ad-hoc errors).
func TestClosedTypedErrors(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[0].tr
	c, err := NewCluster(tr, 8, Options{Shards: 2, Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	cases := []struct {
		name string
		call func() error
	}{
		{"Ingest", func() error { _, err := c.Ingest([]Request{{Object: 0, Node: leaves[0]}}); return err }},
		{"ResolveNow", func() error { return c.ResolveNow() }},
		{"Reconfigure", func() error { _, err := c.Reconfigure(topo.Diff{}); return err }},
		{"ReconfigureRolling", func() error { _, err := c.ReconfigureRolling(topo.Diff{}); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.call(); !errors.Is(err, ErrClosed) {
				t.Fatalf("got %v, want ErrClosed", err)
			}
		})
	}
}

// A closed cluster can still be snapshotted — the shutdown-for-handoff
// sequence: Close, Snapshot, Restore elsewhere, continue serving.
func TestSnapshotAfterClose(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 3000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 700, Threshold: 3, Background: true})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, c, trace[:2000], 256)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.hbn")
	if _, err := c.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	r, _, err := Restore(path, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	compareClusters(t, "handoff", c, r, objects, false)
	ingestAll(t, r, trace[2000:], 256) // the successor serves on
	if r.Stats().Requests != int64(len(trace)) {
		t.Fatalf("successor served %d of %d", r.Stats().Requests, len(trace))
	}
}
