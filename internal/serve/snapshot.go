package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"hbn/internal/dynamic"
	"hbn/internal/obs"
	"hbn/internal/snapshot"
	"hbn/internal/workload"
)

// SnapshotStats summarizes one completed (or crashed) Snapshot call.
type SnapshotStats struct {
	// Seq is the snapshot's sequence number — monotone per cluster, so the
	// crash harness can assert which generation a recovery landed on.
	Seq uint64
	// Bytes is the encoded image size. It is filled in before the disk
	// write starts, so a crashed attempt still reports how large the image
	// would have been.
	Bytes int64
	// Elapsed is the wall time of the whole call; CutStall is the portion
	// spent holding the ingest gate (the consistent cut — the only window
	// during which concurrent Ingest calls can stall); EncodeElapsed and
	// WriteElapsed happen after the gate is released, so disk speed never
	// bounds the serving stall.
	Elapsed       time.Duration
	CutStall      time.Duration
	EncodeElapsed time.Duration
	WriteElapsed  time.Duration
}

// RestoreOptions tune the cluster a Restore builds. Everything that
// affects serving decisions travels inside the snapshot; only the
// scheduling knobs — which never change results — are chosen here.
type RestoreOptions struct {
	// Parallelism bounds batch-serving and solver workers (as in Options).
	Parallelism int
	// Background runs epoch passes on a background goroutine (as in
	// Options).
	Background bool
}

// RestoreInfo reports which generation a Restore recovered.
type RestoreInfo struct {
	// Path is the file the state came from; Fallback is true when it was
	// the previous generation (the primary was missing or damaged).
	Path     string
	Fallback bool
	// Seq is the recovered snapshot's sequence number.
	Seq uint64
}

// Snapshot writes a crash-consistent snapshot of the full cluster state
// to path (see package snapshot for the file format and durability
// protocol; the previous generation is retained at path+".prev").
//
// The consistent cut is taken under the ingest gate — the same quiesce
// barrier reconfiguration commits use — so concurrent Ingest calls stall
// only for the in-memory capture, never for encoding or the disk write;
// the measured windows come back in SnapshotStats. Snapshot serializes
// with topology changes through the same flag as Reconfigure: a call
// while a reconfiguration (or another snapshot) is in flight fails fast
// with ErrReconfigInProgress, because mid-roll the shards straddle two ID
// spaces and no consistent single-tree image exists. A closed cluster can
// still be snapshotted (its state is frozen — the natural last step of a
// shutdown-for-handoff).
func (c *Cluster) Snapshot(path string) (SnapshotStats, error) {
	return c.SnapshotWith(path, snapshot.SaveOptions{})
}

// SnapshotWith is Snapshot with explicit save options — the seam the
// fault-injection harness uses to crash the write at a chosen byte.
// On an injected crash the returned stats are still meaningful (Seq,
// Bytes, CutStall): the cut happened, the commit did not.
func (c *Cluster) SnapshotWith(path string, opts snapshot.SaveOptions) (SnapshotStats, error) {
	var ss SnapshotStats
	if !c.reconfiguring.CompareAndSwap(false, true) {
		return ss, ErrReconfigInProgress
	}
	defer c.reconfiguring.Store(false)
	start := time.Now()

	c.epochMu.Lock()
	// The sequence number advances per attempt, committed or not: a torn
	// generation must never be confused with the one it failed to replace.
	c.snapSeq++
	var st *snapshot.State
	t0 := time.Now()
	c.quiesce(func() { st = c.captureLocked() })
	ss.CutStall = time.Since(t0)
	c.epochMu.Unlock()
	ss.Seq = st.Seq

	t0 = time.Now()
	data := snapshot.Encode(st)
	ss.EncodeElapsed = time.Since(t0)
	ss.Bytes = int64(len(data))

	t0 = time.Now()
	err := snapshot.WriteFile(path, data, opts)
	ss.WriteElapsed = time.Since(t0)
	ss.Elapsed = time.Since(start)
	if o := c.obs; o != nil {
		o.SnapshotCut.Observe(ss.CutStall.Nanoseconds())
		o.Flight.Record(obs.EvSnapshot, -1, int64(ss.Seq), ss.Bytes, ss.CutStall.Nanoseconds())
	}
	return ss, err
}

// captureLocked copies every piece of serving state into a State (caller
// holds epochMu and the full ingest gate, and excludes reconfigurations,
// so the shard locks below are uncontended formality). Everything shared
// is cloned: the State owns its memory and stays valid after the gate
// lifts.
func (c *Cluster) captureLocked() *snapshot.State {
	st := &snapshot.State{
		Seq:        c.snapSeq,
		Tree:       c.t,
		NumObjects: c.numObjects,

		EpochRequests:      c.opts.EpochRequests,
		Threshold:          c.opts.Threshold,
		DecayShift:         uint32(c.opts.DecayShift),
		Unbatched:          c.opts.Unbatched,
		BandwidthAware:     c.opts.BandwidthAware,
		WriteBudget:        c.opts.WriteBudget,
		DriftThreshold:     c.opts.DriftThreshold,
		DriftCheckRequests: c.opts.DriftCheckRequests,

		Solved:             c.solved,
		Served:             c.served.Load(),
		Epochs:             c.stats.Epochs,
		DriftEpochs:        c.stats.DriftEpochs,
		Reconfigs:          c.stats.Reconfigs,
		DriftedTotal:       c.stats.Drifted,
		AdoptMoved:         c.stats.AdoptMoved,
		ResolveTimeNs:      c.stats.ResolveTime.Nanoseconds(),
		DroppedLoad:        c.stats.DroppedLoad,
		DroppedServiceLoad: c.stats.DroppedServiceLoad,
		SolverW:            c.w.Clone(),
		PrevW:              c.prev.Clone(),

		ShardStates: make([]snapshot.ShardState, len(c.shards)),
		Objects:     make([]dynamic.ObjectState, c.numObjects),
	}
	st.EpochLog = make([]snapshot.EpochRec, len(c.epochLog))
	for i, e := range c.epochLog {
		st.EpochLog[i] = snapshot.EpochRec{
			Epoch:            e.Epoch,
			Requests:         e.Requests,
			Drifted:          e.Drifted,
			Moved:            e.Moved,
			StaticCongestion: e.StaticCongestion,
			MaxEdgeLoad:      e.MaxEdgeLoad,
			ResolveNs:        e.ResolveNs,
			Trigger:          e.Trigger,
			DriftMagnitude:   e.DriftMagnitude,
		}
	}
	for si, sh := range c.shards {
		sh.mu.Lock()
		ml := sh.strat.MoveLoad() // freshly allocated per call
		el := make([]int64, len(sh.strat.EdgeLoad))
		copy(el, sh.strat.EdgeLoad)
		st.ShardStates[si] = snapshot.ShardState{
			EdgeLoad: el,
			MoveLoad: ml,
			Requests: sh.strat.Requests(),
			Cost:     sh.cost,
			TrackerW: sh.tracker.Workload().Clone(),
			Drift:    sh.tracker.Drifted(),
		}
		for x := si; x < c.numObjects; x += len(c.shards) {
			st.Objects[x] = sh.strat.ExportObject(x)
		}
		sh.mu.Unlock()
	}
	return st
}

// Restore recovers a warm cluster from the snapshot at path, walking the
// generation ladder: the primary file first, then the retained previous
// generation. A generation is skipped if it fails integrity verification
// (checksum/length) or semantic validation (RestoreState); when neither
// file exists the error wraps snapshot.ErrNoSnapshot, and when at least
// one exists but none is usable it wraps snapshot.ErrCorrupt — the
// caller's signal to fall back to a cold NewCluster + Solve. Restore
// never panics on damaged input.
//
// The restored cluster's subsequent serving behavior is bit-identical to
// the source cluster's from the cut onward (see RestoreState).
func Restore(path string, opts RestoreOptions) (*Cluster, *RestoreInfo, error) {
	var errs []error
	missing := 0
	for _, p := range []string{path, snapshot.PrevPath(path)} {
		st, err := snapshot.ReadFile(p)
		if err == nil {
			var c *Cluster
			if c, err = RestoreState(st, opts); err == nil {
				if o := c.obs; o != nil {
					fb := int64(0)
					if p != path {
						fb = 1
					}
					o.Flight.Record(obs.EvRecovery, -1, int64(st.Seq), fb, 0)
				}
				return c, &RestoreInfo{Path: p, Fallback: p != path, Seq: st.Seq}, nil
			}
			err = fmt.Errorf("%s: %w", p, err)
		} else if errors.Is(err, fs.ErrNotExist) {
			missing++
		}
		errs = append(errs, err)
	}
	if missing == 2 {
		return nil, nil, fmt.Errorf("%w at %s", snapshot.ErrNoSnapshot, path)
	}
	return nil, nil, fmt.Errorf("%w: no usable generation (%v; %v)", snapshot.ErrCorrupt, errs[0], errs[1])
}

// RestoreState rebuilds a warm cluster from a decoded snapshot state. It
// takes ownership of st's slices and workloads — a State must not be
// reused after a successful call. Semantic validation beyond the codec's
// (dimension agreement, per-object invariants) fails with an error
// wrapping snapshot.ErrCorrupt.
//
// Bit-identity: the restored cluster reproduces the source's serving
// decisions exactly from the cut onward. Copy sets, nearest tables and
// live read counters are restored verbatim (see dynamic.RestoreObject);
// write-broadcast edge sets are rebuilt (pure function of the copy set);
// the solver is re-armed with a full Solve over the restored frequency
// view, which by the Resolve ≡ fresh-Solve contract yields the same
// future epoch placements the source would have produced. Parallelism
// and Background may differ from the source — both are scheduling knobs
// whose results are bit-identical by construction.
func RestoreState(st *snapshot.State, opts RestoreOptions) (*Cluster, error) {
	nshards := len(st.ShardStates)
	if nshards == 0 {
		return nil, fmt.Errorf("%w: no shard states", snapshot.ErrCorrupt)
	}
	if len(st.Objects) != st.NumObjects {
		return nil, fmt.Errorf("%w: %d object states for %d objects", snapshot.ErrCorrupt, len(st.Objects), st.NumObjects)
	}
	nodes, edges := st.Tree.Len(), st.Tree.NumEdges()
	if err := checkDims(st.SolverW, st.NumObjects, nodes, "solver workload"); err != nil {
		return nil, err
	}
	if err := checkDims(st.PrevW, st.NumObjects, nodes, "previous-fold workload"); err != nil {
		return nil, err
	}
	for si := range st.ShardStates {
		ss := &st.ShardStates[si]
		if len(ss.EdgeLoad) != edges || len(ss.MoveLoad) != edges {
			return nil, fmt.Errorf("%w: shard %d: %d/%d load entries for %d edges", snapshot.ErrCorrupt, si, len(ss.EdgeLoad), len(ss.MoveLoad), edges)
		}
		if err := checkDims(ss.TrackerW, st.NumObjects, nodes, fmt.Sprintf("shard %d tracker workload", si)); err != nil {
			return nil, err
		}
		if ss.Requests < 0 || ss.Cost < 0 {
			return nil, fmt.Errorf("%w: shard %d: negative accounting", snapshot.ErrCorrupt, si)
		}
		for e := range ss.EdgeLoad {
			if ss.MoveLoad[e] < 0 || ss.MoveLoad[e] > ss.EdgeLoad[e] {
				return nil, fmt.Errorf("%w: shard %d: movement exceeds load on edge %d", snapshot.ErrCorrupt, si, e)
			}
		}
		for _, x := range ss.Drift {
			if x < 0 || x >= st.NumObjects || x%nshards != si {
				return nil, fmt.Errorf("%w: shard %d: drifted object %d not owned", snapshot.ErrCorrupt, si, x)
			}
		}
	}

	c, err := NewCluster(st.Tree, st.NumObjects, Options{
		Shards:             nshards,
		EpochRequests:      st.EpochRequests,
		Threshold:          st.Threshold,
		Parallelism:        opts.Parallelism,
		Background:         opts.Background,
		DecayShift:         uint(st.DecayShift),
		Unbatched:          st.Unbatched,
		BandwidthAware:     st.BandwidthAware,
		WriteBudget:        st.WriteBudget,
		DriftThreshold:     st.DriftThreshold,
		DriftCheckRequests: st.DriftCheckRequests,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	if err := c.installState(st); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// installState populates a freshly built cluster from st under epochMu
// (split out of RestoreState so the failure path can Close the cluster
// after the lock is released — Close itself takes epochMu).
func (c *Cluster) installState(st *snapshot.State) error {
	nshards := len(c.shards)
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	for si, sh := range c.shards {
		ss := &st.ShardStates[si]
		sh.mu.Lock()
		sh.strat.ImportLoads(ss.EdgeLoad, ss.MoveLoad, ss.Requests)
		sh.cost = ss.Cost
		if b := sh.obsb; b != nil {
			// Seed the obs ledger from the image so it reconciles with
			// the restored conservation ledger from the first read.
			b.Store(obs.SlotEvents, ss.Requests)
			b.Store(obs.SlotCost, ss.Cost)
		}
		sh.tracker = dynamic.NewOfflineTrackerWith(st.Tree, ss.TrackerW)
		sh.tracker.MarkDrifted(ss.Drift)
		for x := si; x < st.NumObjects; x += nshards {
			if err := sh.strat.RestoreObject(x, st.Objects[x]); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
			}
		}
		sh.mu.Unlock()
	}
	c.w = st.SolverW
	c.prev = st.PrevW
	c.served.Store(st.Served)
	c.snapSeq = st.Seq
	c.stats.Epochs = st.Epochs
	c.stats.DriftEpochs = st.DriftEpochs
	c.stats.Reconfigs = st.Reconfigs
	c.stats.Drifted = st.DriftedTotal
	c.stats.AdoptMoved = st.AdoptMoved
	c.stats.ResolveTime = time.Duration(st.ResolveTimeNs)
	c.stats.DroppedLoad = st.DroppedLoad
	c.stats.DroppedServiceLoad = st.DroppedServiceLoad
	if o := c.obs; o != nil {
		// The image does not carry per-shard drop attribution (drops are
		// booked cluster-wide in the stats); seed the totals on shard 0
		// so the obs ledger's totals still reconcile exactly.
		b0 := o.Shards.Block(0)
		b0.Store(obs.SlotDroppedLoad, st.DroppedLoad)
		b0.Store(obs.SlotDroppedCost, st.DroppedServiceLoad)
		o.Global.Store(obs.SlotDriftFires, st.DriftEpochs)
		// Replay the epoch log into the epoch histogram so its count
		// keeps equalling Stats.Epochs across a restore.
		for _, e := range st.EpochLog {
			o.EpochPass.Observe(e.ResolveNs)
		}
	}
	c.epochLog = make([]EpochStat, len(st.EpochLog))
	for i, e := range st.EpochLog {
		c.epochLog[i] = EpochStat{
			Epoch:            e.Epoch,
			Requests:         e.Requests,
			Drifted:          e.Drifted,
			Moved:            e.Moved,
			StaticCongestion: e.StaticCongestion,
			MaxEdgeLoad:      e.MaxEdgeLoad,
			ResolveNs:        e.ResolveNs,
			Trigger:          e.Trigger,
			DriftMagnitude:   e.DriftMagnitude,
		}
	}
	if st.Solved {
		// Re-arm the incremental pipeline: a fresh Solve over the restored
		// frequency view puts the solver in exactly the state from which
		// Resolve produces the same placements as the source cluster (the
		// Resolve ≡ fresh-Solve equivalence). The result is discarded — the
		// restored copy sets already ARE the adopted placement.
		if _, err := c.solver.Solve(c.w); err != nil {
			return fmt.Errorf("%w: re-arming solver: %v", snapshot.ErrCorrupt, err)
		}
		c.solved = true
	}
	return nil
}

// checkDims validates a snapshot workload's dimensions before any code
// that would panic on a mismatch sees it.
func checkDims(w *workload.W, objects, nodes int, what string) error {
	if w == nil {
		return fmt.Errorf("%w: missing %s", snapshot.ErrCorrupt, what)
	}
	if w.NumObjects() != objects || w.NumNodes() != nodes {
		return fmt.Errorf("%w: %s is %dx%d, want %dx%d", snapshot.ErrCorrupt, what, w.NumObjects(), w.NumNodes(), objects, nodes)
	}
	return nil
}

// SnapshotWait is Snapshot with bounded retry around the
// ErrReconfigInProgress collision: a snapshot landing while a
// reconfiguration (or another snapshot) holds the flag retries up to
// attempts times, doubling backoff between tries, instead of failing
// fast. Every other error — including a write failure — returns
// immediately. This is the drain-path form: a daemon shutting down wants
// "a snapshot, once the roll in flight finishes", not a hard failure
// that loses the final image. attempts <= 0 means one attempt (plain
// Snapshot); backoff <= 0 retries immediately.
func (c *Cluster) SnapshotWait(path string, attempts int, backoff time.Duration) (SnapshotStats, error) {
	if attempts <= 0 {
		attempts = 1
	}
	var ss SnapshotStats
	var err error
	for i := 0; i < attempts; i++ {
		ss, err = c.Snapshot(path)
		if !errors.Is(err, ErrReconfigInProgress) {
			return ss, err
		}
		if i < attempts-1 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	return ss, err
}

// SnapshotSeq returns the sequence number of the most recent Snapshot
// attempt (committed or crashed), 0 if none.
func (c *Cluster) SnapshotSeq() uint64 {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return c.snapSeq
}
