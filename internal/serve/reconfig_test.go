package serve

import (
	"math/rand"
	"slices"
	"testing"

	"hbn/internal/core"
	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// ingestAll feeds a trace in fixed batches.
func ingestAll(t *testing.T, c *Cluster, trace []Request, batch int) {
	t.Helper()
	for lo := 0; lo < len(trace); lo += batch {
		hi := min(lo+batch, len(trace))
		if _, err := c.Ingest(trace[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
}

// An identity Reconfigure is bit-identical to an ordinary epoch pass: two
// clusters serve the same trace, one reconfigures with an empty diff, the
// other runs ResolveNow, and their loads, copy sets and movement accounts
// match exactly.
func TestReconfigureIdentityMatchesEpochPass(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 24
	trace := workload.DriftingZipf(rand.New(rand.NewSource(21)), tr, objects, 6000, 4, 1.0, 0.05)

	mk := func() *Cluster {
		c, err := NewCluster(tr, objects, Options{Shards: 3, Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 256)
		return c
	}
	c1, c2 := mk(), mk()
	rs, err := c1.Reconfigure(topo.Diff{})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Remap.Identity() {
		t.Fatal("identity diff produced non-identity remap")
	}
	if rs.Recovered != 0 || rs.RemovedNodes != 0 || rs.AddedNodes != 0 {
		t.Fatalf("identity reconfigure reported changes: %+v", rs)
	}
	if err := c2.ResolveNow(); err != nil {
		t.Fatal(err)
	}

	if !slices.Equal(c1.EdgeLoad(), c2.EdgeLoad()) {
		t.Fatal("edge loads differ from the epoch pass")
	}
	if !slices.Equal(c1.ServiceLoad(), c2.ServiceLoad()) {
		t.Fatal("service loads differ from the epoch pass")
	}
	for x := 0; x < objects; x++ {
		if !slices.Equal(c1.Copies(x), c2.Copies(x)) {
			t.Fatalf("object %d: copies %v != %v", x, c1.Copies(x), c2.Copies(x))
		}
	}
	s1, s2 := c1.Stats(), c2.Stats()
	if s1.Requests != s2.Requests || s1.ServiceCost != s2.ServiceCost {
		t.Fatalf("request accounting differs: %+v vs %+v", s1, s2)
	}
	if rs.Moved != s2.AdoptMoved {
		t.Fatalf("migration moved %d, epoch adoption moved %d", rs.Moved, s2.AdoptMoved)
	}
	if s1.Reconfigs != 1 || s2.Reconfigs != 0 {
		t.Fatalf("reconfig counters: %d / %d", s1.Reconfigs, s2.Reconfigs)
	}
}

// A rejected diff must not poison the epoch machinery: the failed
// Reconfigure has already folded outstanding drift into the solver
// workload, so the solver is disarmed and the next pass re-solves from
// scratch — ending bit-identical to a cluster that never saw the failed
// call (found in review: the drift fold used to be dropped on the error
// path, leaving mutated rows the incremental Resolve was never told
// about).
func TestReconfigureFailureLeavesClusterConsistent(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 20
	trace := workload.DriftingZipf(rand.New(rand.NewSource(77)), tr, objects, 5000, 4, 1.0, 0.05)
	mk := func() *Cluster {
		// Arm the incremental solver with a successful pass mid-trace, then
		// leave fresh drift outstanding — the state the failed call's fold
		// corrupts without the disarm.
		c, err := NewCluster(tr, objects, Options{Shards: 3, Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace[:len(trace)/2], 250)
		if err := c.ResolveNow(); err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace[len(trace)/2:], 250)
		return c
	}
	c1, c2 := mk(), mk()
	if _, err := c1.Reconfigure(topo.Diff{Remove: []tree.NodeID{0}}); err == nil {
		t.Fatal("removing node 0 must be rejected")
	}
	if err := c1.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c2.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(c1.EdgeLoad(), c2.EdgeLoad()) {
		t.Fatal("edge loads diverged after a failed reconfigure")
	}
	for x := 0; x < objects; x++ {
		if !slices.Equal(c1.Copies(x), c2.Copies(x)) {
			t.Fatalf("object %d: copies diverged after a failed reconfigure", x)
		}
	}
}

// The failover property, quantified over every leaf: after removing any
// single processor mid-traffic, (1) every object still holds at least one
// copy, (2) the served-request count is conserved exactly and the
// aggregate edge load is conserved up to exactly the loads that sat on
// the removed switches, and (3) the adopted placement equals a cold Solve
// on the remapped observed frequencies — so post-migration static
// congestion is the cold re-solve's congestion, with the migration
// movement priced through the adoption account on top.
func TestReconfigureFailoverEveryLeaf(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 18
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 4000, 3, 1.0, 0.08)

	for _, victim := range tr.Leaves() {
		c, err := NewCluster(tr, objects, Options{Shards: 2, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 200)

		before := c.EdgeLoad()
		var beforeTotal int64
		for _, l := range before {
			beforeTotal += l
		}
		reqBefore := c.Stats().Requests
		hadCopies := make([]bool, objects)
		for x := 0; x < objects; x++ {
			hadCopies[x] = len(c.Copies(x)) > 0
		}

		rs, err := c.Reconfigure(topo.Diff{Remove: []tree.NodeID{victim}})
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}

		// (2) Conservation.
		if got := c.Stats().Requests; got != reqBefore {
			t.Fatalf("victim %d: requests %d, want %d", victim, got, reqBefore)
		}
		var dropped int64
		for e, l := range before {
			if rs.Remap.Edge[e] == tree.NoEdge {
				dropped += l
			}
		}
		if got := c.TotalLoad(); got != beforeTotal-dropped {
			t.Fatalf("victim %d: total load %d, want %d - %d", victim, got, beforeTotal, dropped)
		}

		// (1) No object is copyless.
		for x := 0; x < objects; x++ {
			if hadCopies[x] && len(c.Copies(x)) == 0 {
				t.Fatalf("victim %d: object %d lost all copies", victim, x)
			}
		}

		// (3) Adopted placement == cold Solve on the remapped frequencies.
		w := workload.New(objects, tr.Len())
		w.AddTrace(trace)
		nw := rs.Remap.Workload(w)
		solver, err := core.NewSolver(c.Tree(), core.Options{MappingRoot: tree.None})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := solver.Solve(nw)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < objects; x++ {
			if nw.TotalWeight(x) == 0 {
				continue // no surviving demand: the object keeps its projection
			}
			var want []tree.NodeID
			for _, cp := range cold.Final.Copies[x] {
				want = append(want, cp.Node)
			}
			slices.Sort(want)
			if got := c.Copies(x); !slices.Equal(got, want) {
				t.Fatalf("victim %d object %d: adopted %v, cold solve %v", victim, x, got, want)
			}
		}

		// Serving continues on the new topology with remapped IDs; the
		// removed processor is rejected.
		var resumed []Request
		for _, ev := range trace[:400] {
			if nv := rs.Remap.Node[ev.Node]; nv != tree.None {
				resumed = append(resumed, Request{Object: ev.Object, Node: nv, Write: ev.Write})
			}
		}
		if _, err := c.Ingest(resumed); err != nil {
			t.Fatalf("victim %d: post-failover ingest: %v", victim, err)
		}
		if _, err := c.Ingest([]Request{{Object: 0, Node: tree.NodeID(c.Tree().Len())}}); err == nil {
			t.Fatalf("victim %d: out-of-range node accepted after reconfigure", victim)
		}
	}
}

// Scale-out: grafting a new ring keeps every accumulated load (no edges
// are removed), the new processors accept traffic immediately, and a
// bandwidth-only brownout diff changes bandwidths in place with identity
// IDs and bit-identical loads.
func TestReconfigureScaleOutAndBrownout(t *testing.T) {
	tr := tree.SCICluster(2, 4, 16, 8)
	const objects = 12
	trace := workload.DriftingZipf(rand.New(rand.NewSource(9)), tr, objects, 3000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 2, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, c, trace, 250)
	beforeTotal := c.TotalLoad()
	reqBefore := c.Stats().Requests

	rs, err := c.Reconfigure(topo.Diff{Add: []topo.Graft{
		{Kind: tree.Bus, Name: "ring2", Bandwidth: 16, Parent: 0, SwitchBandwidth: 8},
		{Kind: tree.Processor, Name: "r2p0", ParentAdded: 1},
		{Kind: tree.Processor, Name: "r2p1", ParentAdded: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.AddedNodes != 3 || rs.RemovedNodes != 0 || rs.Recovered != 0 {
		t.Fatalf("scale-out stats: %+v", rs)
	}
	var afterOld int64
	for e := range tr.NumEdges() {
		afterOld += c.EdgeLoad()[rs.Remap.Edge[e]]
	}
	if got := c.TotalLoad(); got != beforeTotal || afterOld != beforeTotal {
		t.Fatalf("scale-out dropped load: total %d (old-edge share %d), want %d", got, afterOld, beforeTotal)
	}
	if got := c.Stats().Requests; got != reqBefore {
		t.Fatalf("scale-out requests %d, want %d", got, reqBefore)
	}
	// Traffic lands on the grafted processors.
	newLeaf := rs.Remap.Added[1]
	if newLeaf == tree.None || !c.Tree().IsLeaf(newLeaf) {
		t.Fatalf("grafted processor missing: %v", rs.Remap.Added)
	}
	if _, err := c.Ingest([]Request{{Object: 1, Node: newLeaf}, {Object: 1, Node: newLeaf}}); err != nil {
		t.Fatal(err)
	}

	// Brownout on the (current) tree: halve ring0's bus and uplink.
	ring := tree.NodeID(1)
	uplink, _ := c.Tree().EdgeBetween(0, ring)
	ringBW := c.Tree().NodeBandwidth(ring)
	loadsBefore := c.EdgeLoad()
	rs2, err := c.Reconfigure(topo.Diff{
		SetBusBandwidth:    []topo.BusBandwidth{{Node: ring, Bandwidth: ringBW / 2}},
		SetSwitchBandwidth: []topo.SwitchBandwidth{{Edge: uplink, Bandwidth: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rs2.Remap.Identity() {
		t.Fatal("bandwidth diff changed IDs")
	}
	if got := c.Tree().NodeBandwidth(ring); got != ringBW/2 {
		t.Fatalf("ring bandwidth %d, want %d", got, ringBW/2)
	}
	if got := c.Tree().EdgeBandwidth(uplink); got != 4 {
		t.Fatalf("uplink bandwidth %d, want 4", got)
	}
	if !slices.Equal(c.EdgeLoad(), loadsBefore) {
		t.Fatal("bandwidth diff changed loads")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reconfigure(topo.Diff{}); err == nil {
		t.Fatal("reconfigure accepted on a closed cluster")
	}
}
