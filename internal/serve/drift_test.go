package serve

import (
	"math/rand"
	"testing"

	"hbn/internal/tree"
	"hbn/internal/workload"
)

// driftServeAll ingests the trace in 500-request batches and returns the
// cluster; everything here is deterministic in (trace, opts).
func driftServeAll(t *testing.T, tr *tree.Tree, objects int, trace []workload.TraceEvent, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(tr, objects, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(trace); i += 500 {
		if _, err := c.Ingest(trace[i:min(i+500, len(trace))]); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// driftFixOptions is the PR 8 fix over a cadence-only configuration: the
// drift trigger armed at a few checks per old epoch, the fallback cadence
// stretched 5x (the trigger catches real shifts; every cadence adoption
// churns copy sets whether or not traffic moved), bandwidth-scaled
// replication budgets and a lazy write-contraction budget.
func driftFixOptions(cadenceOnly Options) Options {
	o := cadenceOnly
	o.EpochRequests = 5 * cadenceOnly.EpochRequests
	o.DriftThreshold = 0.15
	o.DriftCheckRequests = cadenceOnly.EpochRequests / 16
	o.BandwidthAware = true
	o.WriteBudget = o.Threshold
	return o
}

// Diurnal is the scenario where cadence-only epoch re-solve has lost to
// the no-re-solve baseline since PR 3: the activity window drifts
// continuously, so every periodic snapshot lags the sun and each adoption
// moves copies to where traffic just was. The drift trigger plus the PR 8
// budgets must flip that loss to a clear win, not narrow it. All three
// runs are pinned (fixed seed, deterministic ingest), so the comparisons
// are exact, not statistical.
func TestDriftTriggerFlipsDiurnalResolveLoss(t *testing.T) {
	tr := tree.SCICluster(4, 6, 16, 8)
	const objects = 24
	trace := workload.Diurnal(rand.New(rand.NewSource(1)), tr, objects, 30000, 10000, 0.08)

	cadenceOnly := Options{Shards: 4, EpochRequests: 1000, Threshold: 6}
	noResolve := Options{Shards: 4, Threshold: 6}

	cad := driftServeAll(t, tr, objects, trace, cadenceOnly)
	base := driftServeAll(t, tr, objects, trace, noResolve)
	fixed := driftServeAll(t, tr, objects, trace, driftFixOptions(cadenceOnly))

	cm, bm, fm := cad.MaxEdgeLoad(), base.MaxEdgeLoad(), fixed.MaxEdgeLoad()
	t.Logf("diurnal max edge load: cadence-only %d, no-re-solve %d, drift fix %d (%d drift epochs)",
		cm, bm, fm, fixed.Stats().DriftEpochs)
	if cm < bm {
		t.Fatalf("precondition lost: cadence-only re-solve (%d) no longer loses to no-re-solve (%d); update the pinned scenario", cm, bm)
	}
	if fm >= bm {
		t.Fatalf("drift fix should flip the diurnal re-solve loss to a win: %d >= no-re-solve %d", fm, bm)
	}
	if fm >= cm {
		t.Fatalf("drift fix should beat cadence-only re-solve: %d >= %d", fm, cm)
	}
	if fixed.Stats().DriftEpochs == 0 {
		t.Fatal("the drift trigger never fired")
	}
}

// Hotspot-migration is the other documented loss: at scale, per-object
// re-solves on near-identical frequency rows stack every object's copies
// onto the hot region, while the baseline's stale replicas act as
// incidental load spreading. At this pinned seed the cadence-only run
// still loses to no-re-solve; the fix must win against both.
func TestDriftTriggerFlipsHotspotResolveLoss(t *testing.T) {
	tr := tree.SCICluster(8, 8, 32, 16)
	const objects = 128
	trace := workload.HotspotMigration(rand.New(rand.NewSource(4)), tr, objects, 60000, 3, 0.7, 0.05)

	cadenceOnly := Options{Shards: 4, EpochRequests: 1200, Threshold: 8, DecayShift: 1}
	noResolve := Options{Shards: 4, Threshold: 8, DecayShift: 1}

	cad := driftServeAll(t, tr, objects, trace, cadenceOnly)
	base := driftServeAll(t, tr, objects, trace, noResolve)
	fixed := driftServeAll(t, tr, objects, trace, driftFixOptions(cadenceOnly))

	cm, bm, fm := cad.MaxEdgeLoad(), base.MaxEdgeLoad(), fixed.MaxEdgeLoad()
	t.Logf("hotspot max edge load: cadence-only %d, no-re-solve %d, drift fix %d (%d drift epochs)",
		cm, bm, fm, fixed.Stats().DriftEpochs)
	if cm < bm {
		t.Fatalf("precondition lost: cadence-only re-solve (%d) no longer loses to no-re-solve (%d); update the pinned scenario", cm, bm)
	}
	if fm >= bm {
		t.Fatalf("drift fix should flip the hotspot re-solve loss to a win: %d >= no-re-solve %d", fm, bm)
	}
	if fm >= cm {
		t.Fatalf("drift fix should beat cadence-only re-solve: %d >= %d", fm, cm)
	}
	if fixed.Stats().DriftEpochs == 0 {
		t.Fatal("the drift trigger never fired")
	}
}
