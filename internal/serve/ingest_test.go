package serve

import (
	"math/rand"
	"testing"

	"hbn/internal/tree"
	"hbn/internal/workload"
)

// The batched shard path (ServeBatch + RecordBatch) and the per-request
// reference path (Options.Unbatched) must produce bit-identical clusters:
// same loads, same costs, same epoch passes and adoption movement.
func TestIngestBatchedMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 16
	trace := workload.DriftingZipf(rng, tr, objects, 6000, 3, 1.0, 0.05)

	run := func(unbatched bool) ([]int64, []int64, Stats) {
		c, err := NewCluster(tr, objects, Options{
			Shards: 3, EpochRequests: 1000, Threshold: 3, Unbatched: unbatched,
		})
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(trace); {
			hi := lo + 1 + rng.Intn(400)
			if hi > len(trace) {
				hi = len(trace)
			}
			if _, err := c.Ingest(trace[lo:hi]); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		return c.EdgeLoad(), c.ServiceLoad(), c.Stats()
	}
	// Identical uneven batch splits for both runs.
	rng = rand.New(rand.NewSource(78))
	be, bs, bst := run(false)
	rng = rand.New(rand.NewSource(78))
	ue, us, ust := run(true)

	bst.ResolveTime, ust.ResolveTime = 0, 0
	if bst != ust {
		t.Fatalf("stats differ: batched %+v vs unbatched %+v", bst, ust)
	}
	for e := range be {
		if be[e] != ue[e] || bs[e] != us[e] {
			t.Fatalf("edge %d: batched (%d,%d) != unbatched (%d,%d)", e, be[e], bs[e], ue[e], us[e])
		}
	}
}

// The serving hot path must be allocation-free in steady state: once a
// cluster has seen its high-water batch size and every object has been
// touched, Ingest performs ~0 allocations per batch (partition scratch
// cycles through a pool, ServeBatch groups into strategy-owned buffers,
// and all per-object tables are already materialized). Mirrors PR 2's
// TestSolverSteadyAllocs; wired into the CI alloc-guard step.
func TestIngestSteadyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tr := tree.SCICluster(4, 4, 16, 8)
	const objects = 32
	trace := workload.DriftingZipf(rng, tr, objects, 40960, 2, 1.0, 0.05)
	// Parallelism 1 keeps par.ForEach on the caller's goroutine — the
	// guard measures the serving path, not goroutine spawn plumbing.
	// EpochRequests 0 keeps the (allocating, once-per-epoch) re-solve out
	// of the steady-state measurement.
	c, err := NewCluster(tr, objects, Options{Shards: 2, Threshold: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 512
	warm := trace[:len(trace)/2]
	for lo := 0; lo+batch <= len(warm); lo += batch {
		if _, err := c.Ingest(warm[lo : lo+batch]); err != nil {
			t.Fatal(err)
		}
	}
	steady := trace[len(trace)/2:]
	// Telemetry is on by default; scraping the registry between warmup
	// and measurement must not disturb the guarantee either (reads are
	// pure atomic loads, and the write path never allocates).
	if c.Obs() == nil {
		t.Fatal("telemetry should be enabled by default")
	}
	_ = c.Obs().IngestBatch.Snapshot()
	_ = c.Obs().Shards.Total(0)
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		lo := (i * batch) % (len(steady) - batch)
		i++
		if _, err := c.Ingest(steady[lo : lo+batch]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state Ingest allocates %.1f allocs/op, want ~0 (<= 2)", allocs)
	}
}
