package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// Race-stress: N goroutines ingest disjoint slices of one trace
// concurrently while background epoch re-solves adopt fresh placements
// into the shards. Run under -race in CI. The conservation law checked at
// the end — total served requests and total returned service cost equal
// the sums of the per-shard counters, and the aggregate service load sums
// to the same cost — holds for every interleaving.
func TestClusterRaceStress(t *testing.T) {
	tr := tree.SCICluster(3, 5, 16, 8)
	const (
		objects   = 16
		ingesters = 6
		batchSize = 100
		batches   = 24 // per ingester
	)
	trace := workload.HotspotMigration(rand.New(rand.NewSource(17)), tr, objects,
		ingesters*batches*batchSize, 5, 0.7, 0.1)

	c, err := NewCluster(tr, objects, Options{
		Shards:        4,
		EpochRequests: 900,
		Threshold:     3,
		Background:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg        sync.WaitGroup
		totalCost atomic.Int64
	)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := trace[g*batches*batchSize : (g+1)*batches*batchSize]
			for i := 0; i < len(part); i += batchSize {
				cost, err := c.Ingest(part[i : i+batchSize])
				if err != nil {
					t.Error(err)
					return
				}
				totalCost.Add(cost)
			}
		}(g)
	}
	wg.Wait()
	// One synchronous pass drains any drift the background loop has not
	// picked up yet, then the loop stops.
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Requests != int64(len(trace)) {
		t.Fatalf("served %d requests, ingested %d", st.Requests, len(trace))
	}
	if st.ServiceCost != totalCost.Load() {
		t.Fatalf("per-shard service cost %d != sum of Ingest returns %d", st.ServiceCost, totalCost.Load())
	}
	var serviceSum int64
	for _, l := range c.ServiceLoad() {
		serviceSum += l
	}
	if serviceSum != totalCost.Load() {
		t.Fatalf("aggregate service load %d != total returned cost %d", serviceSum, totalCost.Load())
	}
	if st.Epochs == 0 {
		t.Fatal("no epoch passes ran during the stress")
	}
	// Every object's copy set must be live and owned by the right shard.
	for x := 0; x < objects; x++ {
		if len(c.Copies(x)) == 0 {
			t.Fatalf("object %d lost its copies", x)
		}
	}
	t.Logf("epochs %d, drifted %d, moved %d, max edge load %d",
		st.Epochs, st.Drifted, st.AdoptMoved, c.MaxEdgeLoad())
}

// Race-stress for live reconfiguration: ingesters hammer the stable rings
// while a reconfigurer repeatedly fails the tail ring out of the fabric
// and grafts a replacement back in, with background epoch passes enabled
// throughout. Run under -race in CI. The tree is laid out so the doomed
// ring occupies the tail IDs: removals and re-grafts leave every stable
// leaf's ID unchanged, which is what lets the ingesters keep publishing
// batches without coordinating on remaps. Checked at the end: no Ingest
// or Reconfigure error, exact request conservation across all topology
// generations, every object still holds copies, and the service loads
// never exceed the returned costs (removed switches may take dropped
// service history with them, never add any).
func TestReconfigureRaceStress(t *testing.T) {
	tr := tree.SCICluster(4, 6, 32, 16) // ring3 (bus 22, procs 23..28) is the doomed tail
	const (
		objects    = 16
		ingesters  = 5
		batchSize  = 80
		batches    = 30 // per ingester
		reconfigs  = 8  // alternating remove / re-graft
		doomedRing = tree.NodeID(22)
	)
	var stable []tree.NodeID
	for _, v := range tr.Leaves() {
		if v < doomedRing {
			stable = append(stable, v)
		}
	}
	rng := rand.New(rand.NewSource(33))
	trace := make([]workload.TraceEvent, ingesters*batches*batchSize)
	for i := range trace {
		trace[i] = workload.TraceEvent{
			Object: rng.Intn(objects),
			Node:   stable[rng.Intn(len(stable))],
			Write:  rng.Float64() < 0.1,
		}
	}

	c, err := NewCluster(tr, objects, Options{
		Shards:        4,
		EpochRequests: 700,
		Threshold:     3,
		Background:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg        sync.WaitGroup
		totalCost atomic.Int64
	)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			part := trace[g*batches*batchSize : (g+1)*batches*batchSize]
			for i := 0; i < len(part); i += batchSize {
				cost, err := c.Ingest(part[i : i+batchSize])
				if err != nil {
					t.Error(err)
					return
				}
				totalCost.Add(cost)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reconfigs; i++ {
			var d topo.Diff
			if i%2 == 0 {
				d.Remove = []tree.NodeID{doomedRing}
			} else {
				d.Add = []topo.Graft{{Kind: tree.Bus, Name: "ring3", Bandwidth: 32, Parent: 0, SwitchBandwidth: 16}}
				for j := 0; j < 6; j++ {
					d.Add = append(d.Add, topo.Graft{Kind: tree.Processor, ParentAdded: 1})
				}
			}
			if _, err := c.Reconfigure(d); err != nil {
				t.Error(err)
				return
			}
			// A read through the guarded accessors between swaps exercises
			// the topology-consistency locking.
			_ = c.MaxEdgeLoad()
		}
	}()
	wg.Wait()
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Requests != int64(len(trace)) {
		t.Fatalf("served %d requests, ingested %d", st.Requests, len(trace))
	}
	if st.ServiceCost != totalCost.Load() {
		t.Fatalf("per-shard service cost %d != sum of Ingest returns %d", st.ServiceCost, totalCost.Load())
	}
	if st.Reconfigs != reconfigs {
		t.Fatalf("completed %d reconfigures, want %d", st.Reconfigs, reconfigs)
	}
	var serviceSum int64
	for _, l := range c.ServiceLoad() {
		serviceSum += l
	}
	if serviceSum > totalCost.Load() {
		t.Fatalf("aggregate service load %d exceeds total returned cost %d", serviceSum, totalCost.Load())
	}
	for x := 0; x < objects; x++ {
		if len(c.Copies(x)) == 0 {
			t.Fatalf("object %d lost its copies", x)
		}
	}
	t.Logf("epochs %d, reconfigs %d, moved %d, max edge load %d",
		st.Epochs, st.Reconfigs, st.AdoptMoved, c.MaxEdgeLoad())
}
