package serve

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"hbn/internal/workload"
)

// A cluster restored through the fallback ladder (primary damaged, state
// recovered from the previous generation) serves concurrent ingest
// immediately and correctly: no warm-up step, no torn internal state —
// the restored object is indistinguishable from a live one. Run under
// -race in CI; the assertions here are the conservation ledger and
// placement integrity, since concurrent batch interleaving makes epoch
// boundaries (and thus bit-identity) order-dependent by design.
func TestRestoreFallbackServesConcurrentIngest(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(11)), tr, objects, 6000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 700, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.hbn")

	ingestAll(t, c, trace[:1500], 256)
	if _, err := c.Snapshot(path); err != nil { // seq 1 → the generation we fall back to
		t.Fatal(err)
	}
	ingestAll(t, c, trace[1500:3000], 256)
	if _, err := c.Snapshot(path); err != nil { // seq 2 → primary
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit-flip the primary: Restore must land on the previous generation.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x01
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	r, info, err := Restore(path, RestoreOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !info.Fallback {
		t.Fatalf("restore did not fall back: %+v", info)
	}
	base := r.Stats()
	if base.Requests != 1500 {
		t.Fatalf("fallback generation carries %d requests, want 1500", base.Requests)
	}

	// Hammer the just-restored cluster from several goroutines at once —
	// the window a real daemon enters the moment Restore returns.
	const (
		workers  = 4
		perBatch = 64
	)
	suffix := trace[3000:]
	var (
		wg      sync.WaitGroup
		costSum atomic.Int64
	)
	per := len(suffix) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part []workload.TraceEvent) {
			defer wg.Done()
			for lo := 0; lo < len(part); lo += perBatch {
				hi := lo + perBatch
				if hi > len(part) {
					hi = len(part)
				}
				cost, err := r.Ingest(part[lo:hi])
				if err != nil {
					t.Errorf("concurrent ingest after fallback restore: %v", err)
					return
				}
				costSum.Add(cost)
			}
		}(suffix[w*per : (w+1)*per])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Ledger: the restored base plus every acknowledged batch, exactly.
	st := r.Stats()
	if want := base.Requests + int64(workers*per); st.Requests != want {
		t.Fatalf("served %d requests, want %d", st.Requests, want)
	}
	if st.ServiceCost != base.ServiceCost+costSum.Load() {
		t.Fatalf("ServiceCost %d != restored %d + acknowledged %d",
			st.ServiceCost, base.ServiceCost, costSum.Load())
	}
	var slSum int64
	for _, v := range r.ServiceLoad() {
		slSum += v
	}
	if slSum+st.DroppedServiceLoad != st.ServiceCost {
		t.Fatalf("ΣServiceLoad %d + dropped %d != ServiceCost %d",
			slSum, st.DroppedServiceLoad, st.ServiceCost)
	}
	for x := 0; x < objects; x++ {
		if len(r.Copies(x)) == 0 {
			t.Fatalf("object %d lost its copies after fallback restore", x)
		}
	}

	// The fallback state is itself snapshot-worthy: a new generation
	// written now restarts cleanly (the ladder healed).
	if _, err := r.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	r2, info2, err := Restore(path, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if info2.Fallback {
		t.Fatalf("healed primary still restoring via fallback: %+v", info2)
	}
	if got := r2.Stats().Requests; got != st.Requests {
		t.Fatalf("healed snapshot carries %d requests, want %d", got, st.Requests)
	}
}
