// Package serve is the concurrent online serving layer: the subsystem
// where the paper's near-optimal static machinery (core.Solver) and the
// online strategy (dynamic.Strategy) meet live traffic.
//
// A Cluster shards the object space over independent dynamic strategies
// (object x is owned by shard x % Shards; every piece of per-object state
// — copy sets, nearest tables, read counters — is per-object, so the
// sharding is exact: aggregate loads are identical to a single strategy
// serving the whole sequence). Batches ingested by Ingest are partitioned
// by owner (counting-sorted into pooled scratch: the steady-state request
// hot path allocates nothing, guarded by TestIngestSteadyAllocs) and
// served shard-parallel through Strategy.ServeBatch, the run-length
// folding batched path (Options.Unbatched selects the per-request
// reference loop, bit-identical by the batching equivalence property);
// each shard's OfflineTracker records the observed frequencies in bulk as
// it serves.
//
// Every EpochRequests served requests, an epoch pass feeds the objects
// whose frequencies drifted since the previous pass into a shared
// core.Solver — a full Solve on the first epoch, the incremental Resolve
// afterwards — and pushes the freshly solved static placement back into
// the shards: each shard atomically (under its lock) adopts the new copy
// sets as its warm state via Strategy.AdoptCopySet. Adoption repositions
// every object to the near-optimal static placement for the traffic
// actually observed, and threshold dynamics resume from there, so the
// cluster tracks phase shifts at epoch granularity instead of one
// threshold-crossing at a time.
//
// Cost accounting: request service and threshold-driven copy movement are
// charged to the per-edge loads exactly as in dynamic.Strategy. Adoption
// movement (the bulk transfers that install a new placement) is booked
// separately as a total distance (Stats.AdoptMoved) — it is scheduled
// off the request path, and keeping it out of the per-edge account keeps
// the serving loads comparable between re-solving and non-re-solving
// configurations of the same trace.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hbn/internal/core"
	"hbn/internal/dynamic"
	"hbn/internal/obs"
	"hbn/internal/par"
	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// Request is one online access (an alias of the canonical trace event).
type Request = workload.TraceEvent

// ErrClosed reports an operation on a cluster after Close. Accessors
// (loads, stats, copies, snapshots) stay usable on a closed cluster; the
// mutating paths — Ingest, ResolveNow, Reconfigure, ReconfigureRolling —
// fail with an error satisfying errors.Is(err, ErrClosed).
var ErrClosed = errors.New("serve: cluster is closed")

// ErrBadOptions reports an invalid Options value, matched with errors.Is
// through the wrapped error NewCluster returns. Out-of-range values are
// rejected instead of coerced: a negative epoch cadence or a 65-bit decay
// shift is always a caller bug, and serving with silently substituted
// options makes the recorded stats unreproducible.
var ErrBadOptions = errors.New("serve: invalid options")

// Options tune a Cluster.
type Options struct {
	// Shards is the number of object shards (and dynamic strategies)
	// serving in parallel. <= 0 means 1.
	Shards int
	// EpochRequests triggers an epoch re-solve every time this many
	// requests have been served. 0 disables the cadence (the cluster then
	// re-solves only on drift triggers, or never when those are off too);
	// negative values are rejected with ErrBadOptions.
	EpochRequests int64
	// Threshold is the read-replication threshold of the per-shard dynamic
	// strategies (see dynamic.Options). Must be >= 1.
	Threshold int
	// BandwidthAware scales each shard strategy's per-edge replication
	// budget by edge bandwidth (see dynamic.Options.BandwidthAware): edges
	// whose crossings are expensive replicate sooner. False keeps the flat
	// hop threshold.
	BandwidthAware bool
	// WriteBudget is the per-shard strategies' contraction budget (see
	// dynamic.Options.WriteBudget): a multi-copy set survives this many
	// consecutive writes with no intervening read before it contracts to a
	// single copy. 0 and 1 both contract on every write (the pre-budget
	// behavior, still the default); Threshold is the natural opt-in
	// setting. Negative values are rejected with ErrBadOptions.
	WriteBudget int
	// DriftThreshold arms the drift-magnitude epoch trigger: every
	// DriftCheckRequests served requests the cluster measures how far the
	// observed frequency vectors have moved since the last adoption — the
	// request-weighted mean, over drifted objects, of the L1 distance
	// between each object's normalized new-traffic vector and its
	// normalized vector at last adoption (range [0,2]; 2 means the new
	// traffic lands on entirely different processors) — and runs an epoch
	// pass when the mean is at least DriftThreshold. 0 disables the
	// trigger; EpochRequests keeps firing as the fallback cadence either
	// way. Negative or NaN values are rejected with ErrBadOptions.
	DriftThreshold float64
	// DriftCheckRequests is the cadence (in served requests) of the
	// drift-magnitude measurement. 0 defaults to max(1, EpochRequests/8)
	// when the trigger is armed — checking a few times per fallback epoch —
	// and is rejected with ErrBadOptions if that leaves no cadence (both
	// zero) while DriftThreshold is set. Negative values are rejected.
	DriftCheckRequests int64
	// Parallelism bounds the workers serving shards of one batch and the
	// solver's object-parallel stages. <= 0 means GOMAXPROCS.
	Parallelism int
	// Background runs epoch passes on a background goroutine, overlapping
	// re-solves with ingestion; Close must be called to stop it. When
	// false, the Ingest call that crosses an epoch boundary runs the pass
	// inline (deterministic, for tests and benchmarks).
	Background bool
	// DecayShift ages the solver's view of each drifted object at every
	// epoch pass: the retained frequencies are halved DecayShift times
	// before the new epoch's observations are added (an exponentially
	// weighted window, frequency' = frequency>>DecayShift + delta). 0
	// keeps the full cumulative history — right for stationary traffic;
	// 1–2 makes re-solving track phase shifts instead of the all-time
	// average. Objects with no new traffic keep their frequencies either
	// way, so the incremental Resolve contract is preserved.
	DecayShift uint
	// Unbatched serves each shard's partition with the per-request
	// Serve/Record loop instead of the batched run-length-folded path.
	// Both produce bit-identical state (property-tested); this is the
	// reference configuration for equivalence tests and the baseline of
	// the ingest throughput benchmark.
	Unbatched bool
	// NoTelemetry disables the cluster's obs registry: Obs returns nil
	// and the serving paths skip all counter/histogram updates. Telemetry
	// is on by default and costs a handful of uncontended atomic adds per
	// batch (pinned within 3% of the bare path by the CI overhead guard);
	// this switch exists for that guard's baseline measurement, not for
	// production use.
	NoTelemetry bool
	// FlightRecorderSize bounds the obs flight recorder (most recent N
	// structural events, rounded up to a power of two). <= 0 means 1024.
	FlightRecorderSize int
}

// validate rejects option values that would silently change serving
// semantics if coerced. Shards <= 0 meaning 1 and Parallelism <= 0 meaning
// GOMAXPROCS stay as documented defaults — those are stated semantics, not
// coercions.
func (o Options) validate() error {
	if o.Threshold < 1 {
		return fmt.Errorf("%w: Threshold %d, want >= 1", ErrBadOptions, o.Threshold)
	}
	if o.WriteBudget < 0 {
		return fmt.Errorf("%w: WriteBudget %d, want >= 0 (0 and 1 contract eagerly)", ErrBadOptions, o.WriteBudget)
	}
	if o.EpochRequests < 0 {
		return fmt.Errorf("%w: EpochRequests %d, want >= 0", ErrBadOptions, o.EpochRequests)
	}
	if o.DecayShift > 63 {
		return fmt.Errorf("%w: DecayShift %d discards all history, want <= 63", ErrBadOptions, o.DecayShift)
	}
	if math.IsNaN(o.DriftThreshold) || o.DriftThreshold < 0 {
		return fmt.Errorf("%w: DriftThreshold %v, want >= 0", ErrBadOptions, o.DriftThreshold)
	}
	if o.DriftCheckRequests < 0 {
		return fmt.Errorf("%w: DriftCheckRequests %d, want >= 0", ErrBadOptions, o.DriftCheckRequests)
	}
	return nil
}

// EpochStat records one epoch pass, for per-epoch comparison against the
// clairvoyant static optimum.
type EpochStat struct {
	// Epoch numbers passes from 1.
	Epoch int64
	// Requests is the total served when the pass started.
	Requests int64
	// Drifted is the number of objects re-solved in this pass.
	Drifted int
	// Moved is the adoption movement distance of this pass.
	Moved int64
	// StaticCongestion is the solver's congestion on its current view of
	// the observed frequencies — the full history with DecayShift 0, the
	// exponentially aged window otherwise (so it is only comparable to
	// the clairvoyant StaticOffline comparator when decay is off).
	StaticCongestion float64
	// MaxEdgeLoad is the cluster's served max edge load after adoption.
	MaxEdgeLoad int64
	// ResolveNs is the wall time of the solver call.
	ResolveNs int64
	// Trigger records what fired the pass: "cadence" (EpochRequests),
	// "drift" (the drift-magnitude trigger), or "manual" (ResolveNow and
	// reconfiguration passes).
	Trigger string
	// DriftMagnitude is the measured drift at the start of the pass (the
	// request-weighted mean L1 distance described at
	// Options.DriftThreshold), regardless of what triggered it; 0 when no
	// traffic has drifted since the last adoption.
	DriftMagnitude float64
}

// Epoch trigger labels recorded in EpochStat.Trigger.
const (
	TriggerCadence = "cadence"
	TriggerDrift   = "drift"
	TriggerManual  = "manual"
)

// Stats is a point-in-time summary of a Cluster.
type Stats struct {
	Requests    int64         // requests served
	ServiceCost int64         // total service cost (sum of Serve costs)
	Epochs      int64         // epoch passes completed (reconfigures included)
	DriftEpochs int64         // epoch passes fired by the drift-magnitude trigger
	Reconfigs   int64         // topology reconfigurations completed
	Drifted     int64         // objects re-solved, summed over passes
	AdoptMoved  int64         // adoption movement distance, summed (incl. migration)
	ResolveTime time.Duration // total solver wall time (incl. migration solves)
	// DroppedLoad / DroppedServiceLoad accumulate the per-reconfigure
	// ReconfigStats ledger across the cluster's lifetime, closing the
	// conservation equality Σ ServiceLoad + DroppedServiceLoad ==
	// ServiceCost as an internal invariant — one that snapshots carry and
	// the crash harness re-checks after every recovery.
	DroppedLoad        int64
	DroppedServiceLoad int64
}

type shard struct {
	mu      sync.Mutex
	strat   *dynamic.Strategy
	tracker *dynamic.OfflineTracker
	cost    int64 // total service cost of this shard
	// obsb is this shard's padded telemetry counter block (nil with
	// Options.NoTelemetry). Held directly so the per-batch booking is a
	// concrete atomic add on the shard's own cache line — no interface
	// dispatch, no sharing with neighbouring shards.
	obsb *obs.Block
	// onNew marks that a staged reconfiguration has already migrated this
	// shard onto the roll's new tree (guarded by mu; reset under the full
	// ingest gate when the roll commits). While it is set and a roll is
	// active, this shard's requests are translated from old to new IDs on
	// the way in.
	onNew bool
}

// rollState is the double-buffered topology of one staged (rolling)
// reconfiguration in flight: the cluster's visible tree (c.t) is still
// the OLD one — Ingest keeps validating and accepting old IDs — while
// shards migrate onto the new tree one at a time. The struct is immutable
// once published (installed and cleared under the full ingest gate;
// read under its read side), so gated readers never race.
type rollState struct {
	newTree *tree.Tree
	remap   *topo.Remap
	// fallback maps every old leaf to its serving leaf on the new tree
	// (itself when it survives, the nearest surviving leaf otherwise), so
	// traffic addressed to doomed processors keeps being served — and
	// conserved — throughout the swap.
	fallback []tree.NodeID
}

// ingestScratch is the reusable partition state of one in-flight Ingest
// call: the batch is counting-sorted by owner shard into the single
// backing array buf (stable, so per-object request order is preserved),
// and serve is the pre-bound worker closure so the steady path constructs
// nothing per call. Scratch cycles through a sync.Pool — concurrent
// ingesters each hold their own — making Ingest allocation-free once the
// high-water batch size has been seen.
type ingestScratch struct {
	c       *Cluster
	serve   func(worker, si int)
	buf     []Request
	aliased bool    // buf aliases the caller's batch (1 shard, no roll)
	start   []int32 // per shard: start offset into buf (len nshards+1)
	fill    []int32 // scatter cursors
	costs   []int64
}

func (sc *ingestScratch) serveShard(_, si int) {
	part := sc.buf[sc.start[si]:sc.start[si+1]]
	if len(part) == 0 {
		return
	}
	sh := sc.c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.onNew {
		// A staged reconfiguration has moved this shard onto the new tree
		// while the batch is still addressed in old IDs: translate in the
		// scratch buffer (partition copied the batch for exactly this
		// case), sending traffic for doomed processors to their fallback
		// leaves so every request keeps being served and conserved.
		fb := sc.c.roll.fallback
		for i := range part {
			part[i].Node = fb[part[i].Node]
		}
	}
	var cost int64
	if sc.c.opts.Unbatched {
		for _, r := range part {
			cost += sh.strat.Serve(r)
			sh.tracker.Record(r)
		}
	} else {
		cost = sh.strat.ServeBatch(part)
		// The grouped view lets the tracker fold runs of identical events.
		sh.tracker.RecordBatch(sh.strat.GroupedBatch())
	}
	sc.costs[si] = cost
	sh.cost += cost
	if b := sh.obsb; b != nil {
		// Booked inside the shard's critical section, so the obs ledger
		// and the conservation ledger (tracker/strategy state) can never
		// be observed out of step at quiescence.
		b.AddBatch(int64(len(part)), cost)
	}
}

// partition counting-sorts the batch by owner shard into sc.buf and sets
// sc.start. With one shard the batch is aliased, not copied.
func (sc *ingestScratch) partition(batch []Request) {
	nshards := len(sc.c.shards)
	if cap(sc.start) < nshards+1 {
		sc.start = make([]int32, nshards+1)
		sc.fill = make([]int32, nshards)
		sc.costs = make([]int64, nshards)
	}
	sc.start = sc.start[:nshards+1]
	sc.fill = sc.fill[:nshards]
	sc.costs = sc.costs[:nshards]
	for i := range sc.costs {
		sc.costs[i] = 0
	}
	sc.aliased = false
	if nshards == 1 {
		if sc.c.roll != nil {
			// Mid-roll the serve step may rewrite node IDs in place; never
			// alias the caller's batch then.
			if cap(sc.buf) < len(batch) {
				sc.buf = make([]Request, len(batch))
			}
			sc.buf = sc.buf[:len(batch)]
			copy(sc.buf, batch)
		} else {
			sc.buf = batch
			sc.aliased = true
		}
		sc.start[0], sc.start[1] = 0, int32(len(batch))
		return
	}
	for i := range sc.fill {
		sc.fill[i] = 0
	}
	for i := range batch {
		sc.fill[batch[i].Object%nshards]++
	}
	off := int32(0)
	for si, n := range sc.fill {
		sc.start[si] = off
		sc.fill[si] = off
		off += n
	}
	sc.start[nshards] = off
	if cap(sc.buf) < len(batch) {
		sc.buf = make([]Request, len(batch))
	}
	sc.buf = sc.buf[:len(batch)]
	for _, r := range batch {
		si := r.Object % nshards
		sc.buf[sc.fill[si]] = r
		sc.fill[si]++
	}
}

// Cluster is the sharded concurrent serving layer. All methods are safe
// for concurrent use.
type Cluster struct {
	t          *tree.Tree
	opts       Options
	numObjects int
	shards     []*shard
	isLeaf     []bool    // per node, precomputed: batch validation is one byte load per event
	scratch    sync.Pool // of *ingestScratch; see Ingest

	// Epoch machinery: epochMu serializes passes and guards everything
	// below it. The solver's workload w aggregates the observed
	// frequencies of all shards (rows are copied in under shard locks, so
	// the partitioned per-shard trackers and w never race).
	epochMu    sync.Mutex
	solver     *core.Solver
	w          *workload.W
	prev       *workload.W // per-object tracker rows as of the last fold
	solved     bool
	changedBuf []int
	nodesBuf   []tree.NodeID
	stats      Stats
	epochLog   []EpochStat
	lastErr    error  // most recent background pass failure
	snapSeq    uint64 // monotone snapshot sequence number (see Snapshot)

	served  atomic.Int64
	closed  atomic.Bool
	closeMu sync.RWMutex // the ingest gate; see quiesce
	trigger chan struct{}
	// driftTrigger is the background-mode channel of the drift-magnitude
	// trigger: a crossing of the DriftCheckRequests cadence enqueues a
	// (coalescing) check here; the loop measures and fires a pass only
	// when the measured drift clears DriftThreshold.
	driftTrigger chan struct{}
	done         chan struct{}
	wg           sync.WaitGroup

	// obs is the cluster's telemetry registry (nil with NoTelemetry).
	// All registry state is atomic; hot paths hold direct pointers into
	// it (each shard's obsb block).
	obs *obs.Registry

	// reconfiguring serializes Reconfigure/ReconfigureRolling calls: a
	// second call arriving while one is in flight fails fast with
	// ErrReconfigInProgress instead of queueing behind epochMu (which a
	// rolling call holds for its whole duration).
	reconfiguring atomic.Bool
	// roll is the staged reconfiguration in flight, nil otherwise.
	// Written only inside quiesce (the full ingest gate); read under the
	// gate's read side.
	roll *rollState
	// rollHook, when set (tests only, before the call), runs after each
	// shard's migration with the count of shards migrated so far — the
	// probe that lets tests freeze a roll mid-swap and observe the
	// double-buffered serving state deterministically.
	rollHook func(migrated int)
}

// quiesce write-acquires the ingest gate, runs fn (which may be nil) and
// releases. This is the cluster's one gating primitive: returning
// guarantees that every gated call — Ingest batches, load accessors —
// that began before quiesce has fully finished, that none started while
// fn ran, and that fn's writes are visible to every gated call that
// starts afterwards. Close uses it as a pure barrier to wait out
// in-flight batches; the reconfiguration paths use it to publish
// topology-generation changes (the roll state, the tree swap) atomically
// with respect to serving.
func (c *Cluster) quiesce(fn func()) {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if fn != nil {
		fn()
	}
}

// NewCluster creates a cluster for numObjects objects on t. The tree must
// be a valid hierarchical bus network. Invalid options are rejected with
// an error satisfying errors.Is(err, ErrBadOptions).
func NewCluster(t *tree.Tree, numObjects int, opts Options) (*Cluster, error) {
	if numObjects < 0 {
		return nil, fmt.Errorf("serve: negative object count %d", numObjects)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.DriftThreshold > 0 && opts.DriftCheckRequests == 0 {
		if opts.EpochRequests == 0 {
			return nil, fmt.Errorf("%w: DriftThreshold %v with no check cadence (set DriftCheckRequests, or EpochRequests to derive it)", ErrBadOptions, opts.DriftThreshold)
		}
		opts.DriftCheckRequests = max(1, opts.EpochRequests/8)
	}
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	solver, err := core.NewSolver(t, core.Options{MappingRoot: tree.None, Parallelism: opts.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	c := &Cluster{
		t:          t,
		opts:       opts,
		numObjects: numObjects,
		shards:     make([]*shard, opts.Shards),
		solver:     solver,
		w:          workload.New(numObjects, t.Len()),
		prev:       workload.New(numObjects, t.Len()),
	}
	if !opts.NoTelemetry {
		fr := opts.FlightRecorderSize
		if fr <= 0 {
			fr = 1024
		}
		c.obs = obs.NewRegistry(opts.Shards, fr)
	}
	for i := range c.shards {
		// Threshold validity was checked above, so New cannot fail here.
		c.shards[i] = &shard{
			strat:   dynamic.MustNew(t, numObjects, c.dynOpts()),
			tracker: dynamic.NewOfflineTracker(t, numObjects),
		}
		if c.obs != nil {
			c.shards[i].obsb = c.obs.Shards.Block(i)
		}
	}
	c.isLeaf = make([]bool, t.Len())
	for _, v := range t.Leaves() {
		c.isLeaf[v] = true
	}
	c.scratch.New = func() any {
		sc := &ingestScratch{c: c}
		sc.serve = sc.serveShard // bind once; per-call closures would allocate
		return sc
	}
	if opts.Background {
		c.trigger = make(chan struct{}, 1)
		c.driftTrigger = make(chan struct{}, 1)
		c.done = make(chan struct{})
		c.wg.Add(1)
		go c.loop()
	}
	return c, nil
}

// dynOpts is the per-shard strategy configuration derived from the
// cluster's options — one place, so serving shards and reconfiguration
// rebuilds cannot diverge.
func (c *Cluster) dynOpts() dynamic.Options {
	return dynamic.Options{
		Threshold:      c.opts.Threshold,
		BandwidthAware: c.opts.BandwidthAware,
		WriteBudget:    c.opts.WriteBudget,
	}
}

// Ingest serves one batch of requests and returns its total service cost.
// Requests are partitioned onto their owner shards and served in parallel;
// concurrent Ingest calls are safe (shards serialize internally). If the
// batch crosses an epoch boundary, the epoch pass runs inline (or is
// handed to the background loop when Options.Background is set). While a
// staged reconfiguration is in flight the inline pass is skipped — the
// roll itself ends with a full re-solve and adoption, and blocking a
// serving batch behind the whole roll would defeat its stall bound; the
// drift is picked up at the next crossing.
func (c *Cluster) Ingest(batch []Request) (int64, error) {
	total, crossed, driftCheck, err := c.serveGated(batch)
	if err != nil || (!crossed && !driftCheck) {
		return total, err
	}
	if !c.reconfiguring.Load() {
		// Outside the gate: the pass serializes on epochMu alone, so a
		// reconfiguration quiescing the gate never waits on this batch's
		// epoch work (and vice versa — no lock-order cycle).
		if crossed {
			// A cadence pass folds all drift anyway, so a coinciding drift
			// check is subsumed.
			if err := c.resolveEpoch(TriggerCadence); err != nil {
				return total, err
			}
		} else if err := c.maybeDriftEpoch(); err != nil {
			return total, err
		}
	}
	return total, nil
}

// serveGated validates, partitions and serves one batch under the ingest
// gate's read side. In background mode an epoch or drift-check crossing
// enqueues the matching (non-blocking) trigger here, still under the gate,
// so Close's quiesce barrier keeps its guarantee that no drained batch is
// about to enqueue one; in inline mode crossed/driftCheck tell Ingest to
// run the work AFTER releasing the gate. Nothing that runs under the gate
// may wait on epochMu — crossing detection is pure counter arithmetic.
func (c *Cluster) serveGated(batch []Request) (total int64, crossed, driftCheck bool, err error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return 0, false, false, ErrClosed
	}
	for i := range batch {
		r := &batch[i]
		if r.Object < 0 || r.Object >= c.numObjects {
			return 0, false, false, fmt.Errorf("serve: request %d: object %d out of range [0,%d)", i, r.Object, c.numObjects)
		}
		if r.Node < 0 || int(r.Node) >= len(c.isLeaf) || !c.isLeaf[r.Node] {
			return 0, false, false, fmt.Errorf("serve: request %d: node %d is not a processor", i, r.Node)
		}
	}
	var t0 time.Time
	if c.obs != nil {
		t0 = time.Now()
	}
	sc := c.scratch.Get().(*ingestScratch)
	sc.partition(batch)
	par.ForEach(c.opts.Parallelism, len(c.shards), sc.serve)
	for _, ct := range sc.costs {
		total += ct
	}
	if sc.aliased {
		sc.buf = nil // aliased the caller's batch; don't retain it in the pool
	}
	c.scratch.Put(sc)
	if c.obs != nil {
		// Two clock reads per batch, amortized over the whole batch; the
		// per-shard counters were booked inside serveShard.
		c.obs.IngestBatch.ObserveSince(t0)
	}
	after := c.served.Add(int64(len(batch)))
	before := after - int64(len(batch))
	if e := c.opts.EpochRequests; e > 0 && before/e != after/e {
		if c.opts.Background {
			select {
			case c.trigger <- struct{}{}:
			default: // a pass is already pending; it will see our drift
			}
		} else {
			crossed = true
		}
	}
	if d := c.opts.DriftCheckRequests; c.opts.DriftThreshold > 0 && d > 0 && before/d != after/d {
		if c.opts.Background {
			select {
			case c.driftTrigger <- struct{}{}:
			default: // a check is already pending; it will see our drift
			}
		} else {
			driftCheck = true
		}
	}
	return total, crossed, driftCheck, nil
}

// ResolveNow forces an epoch pass synchronously (used by benchmarks to
// flush at trace end, and by tests).
func (c *Cluster) ResolveNow() error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.resolveEpoch(TriggerManual)
}

// resolveEpoch is the epoch pass: drain per-shard drift, fold the drifted
// rows into the solver workload, Solve/Resolve, and push the fresh copy
// sets back into the shards.
func (c *Cluster) resolveEpoch(trigger string) error {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return c.resolveEpochLocked(trigger)
}

// maybeDriftEpoch measures the drift magnitude and runs an epoch pass only
// when it clears DriftThreshold — the drift-triggered path of Ingest and
// the background loop. Like resolveEpoch it serializes on epochMu alone
// and must be called outside the ingest gate.
func (c *Cluster) maybeDriftEpoch() error {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if c.driftMagnitudeLocked() < c.opts.DriftThreshold {
		return nil
	}
	return c.resolveEpochLocked(TriggerDrift)
}

// driftMagnitudeLocked measures how far the observed traffic has moved
// since the last adoption (caller holds epochMu): for each object with new
// traffic, the L1 distance between its normalized new-traffic frequency
// vector (tracker row minus the row at last fold) and its normalized
// vector as of the last fold — 0 when the new traffic lands exactly where
// the adopted placement was solved for, 2 when it lands on entirely
// different processors (a brand-new object counts as 2) — averaged over
// drifted objects weighted by their new request mass, with a per-object
// sampling-noise floor subtracted so thin traffic does not read as drift. Comparing new mass
// against the last-adoption distribution rather than cumulative totals
// keeps a long stable history from diluting a sharp phase shift. Reading
// each shard's rows under its lock without draining the drift queue keeps
// the measurement race-free and the epoch pass's own fold intact.
func (c *Cluster) driftMagnitudeLocked() float64 {
	leaves := c.t.Leaves()
	var num, den float64
	for _, sh := range c.shards {
		sh.mu.Lock()
		shw := sh.tracker.Workload()
		sh.tracker.DriftedFunc(func(x int) {
			dTot, d := c.objectDriftLocked(shw.Row(x), x, leaves)
			if dTot <= 0 {
				return // queued by a reconfigure re-warm, no new traffic
			}
			num += float64(dTot) * d
			den += float64(dTot)
		})
		sh.mu.Unlock()
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// objectDriftLocked measures one object's drift (caller holds epochMu and
// may read row under its shard's lock): the new request mass since the
// last fold, and the noise-floored L1 distance between the normalized
// new-traffic vector and the normalized vector as of the last fold.
func (c *Cluster) objectDriftLocked(row []workload.Access, x int, leaves []tree.NodeID) (dTot int64, d float64) {
	var pTot int64
	for _, v := range leaves {
		cur, old := row[v], c.prev.At(x, v)
		dTot += (cur.Reads - old.Reads) + (cur.Writes - old.Writes)
		pTot += old.Reads + old.Writes
	}
	if dTot <= 0 {
		return dTot, 0
	}
	d = 2.0
	if pTot > 0 {
		d = 0
		var support int
		for _, v := range leaves {
			cur, old := row[v], c.prev.At(x, v)
			dl := (cur.Reads - old.Reads) + (cur.Writes - old.Writes)
			pl := old.Reads + old.Writes
			if dl > 0 || pl > 0 {
				support++
			}
			d += math.Abs(float64(dl)/float64(dTot) - float64(pl)/float64(pTot))
		}
		// Small-sample correction: two empirical frequency vectors
		// drawn from the SAME distribution still sit at an expected
		// L1 distance of about sqrt(k/n) each (k = support size,
		// n = sample mass), so subtract that noise floor from the
		// raw distance. Without it a handful of requests since the
		// last adoption reads as drift and the trigger fires on
		// sampling noise at every check; a real phase shift moves
		// mass to different processors entirely (raw distance near
		// 2) and clears the corrected threshold easily.
		d -= math.Sqrt(float64(support)/float64(dTot)) + math.Sqrt(float64(support)/float64(pTot))
		if d < 0 {
			d = 0
		}
	}
	return dTot, d
}

// collectDriftLocked drains every shard tracker's drift into the solver
// workload (caller holds epochMu) and returns the drifted object list,
// which aliases c.changedBuf's backing array and is valid until the next
// collection. Object rows are partitioned (object x only ever recorded by
// shard x % Shards), so reading row x from its owner's tracker under the
// owner's lock is exact and race-free. Each drifted object's solver row
// ages by DecayShift halvings, then absorbs the delta observed since the
// last fold (with DecayShift 0 this reduces to the plain cumulative
// frequencies).
func (c *Cluster) collectDriftLocked() []int {
	changed := c.changedBuf[:0]
	leaves := c.t.Leaves()
	shift := c.opts.DecayShift
	armed := c.opts.DriftThreshold > 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		from := len(changed)
		changed = sh.tracker.DrainDrifted(changed)
		shw := sh.tracker.Workload()
		for _, x := range changed[from:] {
			row := shw.Row(x)
			// With the drift trigger armed, the fold also discounts the
			// object's decayed history by its measured drift: an object
			// whose new traffic lands where the old did (d near 0) keeps
			// its full decayed mass, one whose traffic moved to entirely
			// different processors (d near 2) forgets the stale history
			// outright — otherwise the solver keeps placing for a
			// distribution that no longer exists for several folds after
			// a phase shift, and the adopted placement lags the traffic.
			keep := 1.0
			if armed {
				if _, d := c.objectDriftLocked(row, x, leaves); d > 0 {
					keep = 1 - d/2
				}
			}
			for _, v := range leaves {
				cur, old, was := row[v], c.prev.At(x, v), c.w.At(x, v)
				r, w := was.Reads>>shift, was.Writes>>shift
				if keep < 1 {
					r = int64(float64(r) * keep)
					w = int64(float64(w) * keep)
				}
				c.w.Set(x, v, workload.Access{
					Reads:  r + cur.Reads - old.Reads,
					Writes: w + cur.Writes - old.Writes,
				})
				c.prev.Set(x, v, cur)
			}
		}
		sh.mu.Unlock()
	}
	c.changedBuf = changed[:0] // keep capacity; the list itself is consumed by the caller
	return changed
}

func (c *Cluster) resolveEpochLocked(trigger string) error {
	start := time.Now()
	startReqs := c.served.Load() // snapshot: ingestion continues during the pass

	// Measured before the fold below overwrites c.prev — this is the drift
	// the pass is reacting to, recorded for every pass so cadence and
	// drift-triggered epochs are comparable in the log.
	driftMag := c.driftMagnitudeLocked()

	changed := c.collectDriftLocked()

	if len(changed) == 0 && c.solved {
		return nil
	}
	var (
		res *core.Result
		err error
	)
	if !c.solved {
		res, err = c.solver.Solve(c.w)
	} else {
		res, err = c.solver.Resolve(changed)
		if err != nil {
			// After a failed Resolve the solver state is unspecified; a
			// full Solve re-arms it.
			res, err = c.solver.Solve(c.w)
		}
	}
	if err != nil {
		return fmt.Errorf("serve: epoch re-solve: %w", err)
	}
	c.solved = true

	// Adoption: every object with demand moves to its freshly solved
	// placement. Unchanged objects whose dynamic state drifted (writes
	// contract copy sets) are re-warmed too; identical sets are no-ops.
	var moved int64
	for si, sh := range c.shards {
		sh.mu.Lock()
		for x := si; x < c.numObjects; x += len(c.shards) {
			cs := res.Final.Copies[x]
			if len(cs) == 0 {
				continue
			}
			nodes := c.nodesBuf[:0]
			for _, cp := range cs {
				nodes = append(nodes, cp.Node)
			}
			c.nodesBuf = nodes[:0]
			moved += sh.strat.AdoptCopySet(x, nodes)
		}
		sh.mu.Unlock()
	}

	elapsed := time.Since(start)
	c.stats.Epochs++
	if trigger == TriggerDrift {
		c.stats.DriftEpochs++
	}
	c.stats.Drifted += int64(len(changed))
	c.stats.AdoptMoved += moved
	c.stats.ResolveTime += elapsed
	c.epochLog = append(c.epochLog, EpochStat{
		Epoch:            c.stats.Epochs,
		Requests:         startReqs,
		Drifted:          len(changed),
		Moved:            moved,
		StaticCongestion: res.Report.Congestion.Float(),
		MaxEdgeLoad:      c.maxEdgeLoadLocked(),
		ResolveNs:        elapsed.Nanoseconds(),
		Trigger:          trigger,
		DriftMagnitude:   driftMag,
	})
	if o := c.obs; o != nil {
		o.EpochPass.Observe(elapsed.Nanoseconds())
		o.Flight.Record(obs.EvEpoch, -1, triggerCode(trigger), int64(len(changed)), moved)
		if trigger == TriggerDrift {
			o.Global.Add(obs.SlotDriftFires, 1)
			o.Flight.Record(obs.EvDrift, -1,
				int64(driftMag*1000), int64(c.opts.DriftThreshold*1000), 0)
		}
	}
	return nil
}

// triggerCode maps an EpochStat trigger label to the integer carried in
// flight-recorder events.
func triggerCode(trigger string) int64 {
	switch trigger {
	case TriggerCadence:
		return 1
	case TriggerDrift:
		return 2
	default:
		return 3 // manual / reconfiguration
	}
}

// loop is the background epoch runner.
func (c *Cluster) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-c.trigger:
			// A failing pass leaves serving untouched; the error is
			// retained (LastResolveErr, also returned by Close) so silent
			// degradation to the no-re-solve baseline is observable.
			if err := c.resolveEpoch(TriggerCadence); err != nil {
				c.epochMu.Lock()
				c.lastErr = err
				c.epochMu.Unlock()
			}
		case <-c.driftTrigger:
			if err := c.maybeDriftEpoch(); err != nil {
				c.epochMu.Lock()
				c.lastErr = err
				c.epochMu.Unlock()
			}
		}
	}
}

// LastResolveErr returns the most recent background epoch-pass error, or
// nil. Synchronous passes (inline crossings, ResolveNow) report their
// errors directly to the caller instead.
func (c *Cluster) LastResolveErr() error {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return c.lastErr
}

// Close stops the background epoch loop (if any) and returns the last
// background re-solve error, if one occurred. The cluster rejects further
// Ingest/ResolveNow calls; accessors stay usable.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.opts.Background {
		close(c.done)
		c.wg.Wait()
		// Wait out in-flight Ingest calls: after the quiesce barrier, no
		// batch that passed the closed check can still be serving (or about
		// to enqueue a trigger).
		c.quiesce(nil)
		// A trigger enqueued after the loop's final select would be
		// dropped, abandoning the drift it announced; drain it with one
		// last synchronous pass (a no-op when ResolveNow already ran). A
		// pending drift check is drained the same way — it may decline.
		select {
		case <-c.trigger:
			if err := c.resolveEpoch(TriggerCadence); err != nil {
				c.epochMu.Lock()
				c.lastErr = err
				c.epochMu.Unlock()
			}
		default:
		}
		select {
		case <-c.driftTrigger:
			if err := c.maybeDriftEpoch(); err != nil {
				c.epochMu.Lock()
				c.lastErr = err
				c.epochMu.Unlock()
			}
		default:
		}
	}
	return c.LastResolveErr()
}

// EdgeLoad returns the aggregate per-edge load (request service plus
// threshold-driven copy movement) summed over all shards, indexed by the
// current topology's edge IDs.
func (c *Cluster) EdgeLoad() []int64 {
	// The read lock pins the topology: Reconfigure write-acquires closeMu
	// before swapping the tree and the shard strategies, so the edge count
	// and every shard's load vector are mutually consistent here.
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	return c.edgeLoadLocked()
}

// edgeLoadLocked is EdgeLoad for callers that already exclude a
// concurrent topology swap (holding closeMu in either mode, or epochMu).
func (c *Cluster) edgeLoadLocked() []int64 {
	return c.foldLoadsLocked(func(sh *shard) []int64 { return sh.strat.EdgeLoad })
}

// foldLoadsLocked sums a per-shard load vector over all shards. While a
// staged reconfiguration is mid-swap the shards straddle two ID spaces;
// the fold reports in the NEW tree's edge space — already-migrated
// shards add directly, the rest project forward through the roll's remap
// (loads sitting on doomed switches are omitted from the view, exactly
// as they will be dropped when their shard migrates).
func (c *Cluster) foldLoadsLocked(loads func(*shard) []int64) []int64 {
	roll := c.roll
	n := c.t.NumEdges()
	if roll != nil {
		n = roll.newTree.NumEdges()
	}
	out := make([]int64, n)
	for _, sh := range c.shards {
		sh.mu.Lock()
		if roll != nil && !sh.onNew {
			for e, l := range loads(sh) {
				if ne := roll.remap.Edge[e]; ne != tree.NoEdge {
					out[ne] += l
				}
			}
		} else {
			for e, l := range loads(sh) {
				out[e] += l
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// ServiceLoad returns the aggregate per-edge service load (excluding all
// copy movement) summed over all shards.
func (c *Cluster) ServiceLoad() []int64 {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	return c.foldLoadsLocked(func(sh *shard) []int64 { return sh.strat.ServiceLoad() })
}

// MaxEdgeLoad returns the maximum aggregate edge load.
func (c *Cluster) MaxEdgeLoad() int64 {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	return c.maxEdgeLoadLocked()
}

func (c *Cluster) maxEdgeLoadLocked() int64 {
	var m int64
	for _, l := range c.edgeLoadLocked() {
		if l > m {
			m = l
		}
	}
	return m
}

// TotalLoad returns the sum of all aggregate edge loads.
func (c *Cluster) TotalLoad() int64 {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	var m int64
	for _, l := range c.edgeLoadLocked() {
		m += l
	}
	return m
}

// Tree returns the cluster's current network. After a Reconfigure this is
// the post-diff tree; while a staged reconfiguration is mid-swap it is
// the NEW tree, so (Tree, EdgeLoad) stay mutually consistent at every
// instant (Ingest addressing stays old-ID until the roll commits). The
// returned value is immutable and remains valid (as a snapshot of that
// topology generation) across later reconfigures.
func (c *Cluster) Tree() *tree.Tree {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.roll != nil {
		return c.roll.newTree
	}
	return c.t
}

// Copies returns the current copy nodes of object x (sorted), from its
// owner shard.
func (c *Cluster) Copies(x int) []tree.NodeID {
	if x < 0 || x >= c.numObjects {
		panic(fmt.Sprintf("serve: object %d out of range", x))
	}
	sh := c.shards[x%len(c.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.strat.Copies(x)
}

// Stats returns a point-in-time summary. Requests and ServiceCost are
// exact once all concurrent Ingest calls have returned.
func (c *Cluster) Stats() Stats {
	c.epochMu.Lock()
	st := c.stats
	c.epochMu.Unlock()
	var served, cost int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		served += sh.strat.Requests()
		cost += sh.cost
		sh.mu.Unlock()
	}
	st.Requests = served
	st.ServiceCost = cost
	return st
}

// EpochLog returns a copy of the per-epoch records.
func (c *Cluster) EpochLog() []EpochStat {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	out := make([]EpochStat, len(c.epochLog))
	copy(out, c.epochLog)
	return out
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Obs returns the cluster's telemetry registry, or nil when the cluster
// was built with Options.NoTelemetry. The registry is live: counters and
// histograms may be read at any time (they are exact once all concurrent
// Ingest calls have returned, like Stats), and the per-shard event/cost
// counters reconcile exactly with Stats' conservation ledger at
// quiescence — the chaos harness asserts that equality after every run.
func (c *Cluster) Obs() *obs.Registry { return c.obs }

// OpCounts merges the structural decision counters (replications,
// contractions, materializations, adoptions) of all shard strategies.
func (c *Cluster) OpCounts() dynamic.OpCounts {
	var t dynamic.OpCounts
	for _, sh := range c.shards {
		sh.mu.Lock()
		t.Add(sh.strat.Ops())
		sh.mu.Unlock()
	}
	return t
}
