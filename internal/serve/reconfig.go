package serve

import (
	"errors"
	"fmt"
	"time"

	"hbn/internal/dynamic"
	"hbn/internal/obs"
	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// ErrReconfigInProgress reports that a Reconfigure or ReconfigureRolling
// call is already in flight. Reconfigurations never queue: a rolling call
// holds the epoch lock for its whole (potentially long) duration, and
// silently serializing a second topology change behind it would stack
// diffs whose IDs refer to a tree that no longer exists by the time the
// second one runs. Callers retry after the first call returns, diffing
// against the then-current tree.
var ErrReconfigInProgress = errors.New("serve: reconfiguration already in progress")

// ReconfigStats summarizes one completed Reconfigure / ReconfigureRolling
// call.
type ReconfigStats struct {
	// Elapsed is the wall time of the whole reconfiguration. For the
	// stop-the-world Reconfigure, ingestion is blocked for all of it.
	Elapsed time.Duration
	// PlanElapsed is the planning portion (diff application, migration
	// solve, projection tables). A rolling call plans while ingestion runs
	// at full speed; stop-the-world plans inside the gate.
	PlanElapsed time.Duration
	// MaxIngestStall bounds the longest single window during which any
	// Ingest call could have been blocked by this reconfiguration: the
	// whole Elapsed for stop-the-world; for rolling, the maximum over the
	// two quiesce windows (publish and commit) and each individual shard's
	// migration — the stall bound the staged swap exists to deliver.
	MaxIngestStall time.Duration
	// Rolling records which path produced these stats.
	Rolling bool
	// RemovedNodes / AddedNodes count the node difference (removals
	// include pruned degenerate buses).
	RemovedNodes, AddedNodes int
	// Projected counts objects that kept at least one surviving copy;
	// Recovered counts objects whose copies were all lost and were
	// restored at the nearest surviving leaf.
	Projected, Recovered int
	// Moved is the adoption-priced migration distance: each re-solved copy
	// charged its tree distance to the object's nearest surviving copy.
	Moved int64
	// DroppedLoad is the aggregate edge load that sat on removed edges and
	// left with the hardware; DroppedServiceLoad is its service-only part.
	// These close the conservation ledger across topology changes: summed
	// service load after a reconfigure equals the sum before it minus
	// DroppedServiceLoad, so Σ ServiceLoad(final) + Σ DroppedServiceLoad
	// over all reconfigures equals the total cost Ingest returned.
	DroppedLoad, DroppedServiceLoad int64
	// Remap translates old IDs onto the new topology, so callers can
	// project in-flight traces, external load tables, or monitoring state
	// the same way the cluster did.
	Remap *topo.Remap
}

// Reconfigure applies a topology diff to the live cluster: the network is
// rebuilt through topo.Apply, and every layer of serving state migrates
// across the ID remap — observed frequencies (cluster and per-shard
// tracker rows), per-shard edge-load and request accounting (surviving
// edges keep their history; removed edges' loads are dropped with the
// hardware), and every object's copy set. Copies on surviving nodes stay
// exactly where they are (minimal movement); objects whose copies were
// all lost are restored at the surviving leaf nearest to the lost set;
// then one epoch-style pass adopts the placement freshly solved on the
// remapped frequencies, pricing the migration through the same
// AdoptCopySet movement account as every epoch pass (Stats.AdoptMoved).
// The epoch solver is re-armed on the new tree, so subsequent passes
// continue incrementally with Resolve.
//
// Reconfigure is safe under concurrent Ingest and background epoch
// passes: it write-acquires the ingest gate (waiting out in-flight
// batches and blocking new ones for the duration) and holds the epoch
// lock. A concurrent Reconfigure/ReconfigureRolling fails fast with
// ErrReconfigInProgress. Requests ingested after it returns must use NEW
// node IDs — translate in-flight traffic through the returned
// ReconfigStats.Remap. The renumbering is dense, so the cluster can only
// reject stale IDs that fall outside the new tree or on a bus; an
// untranslated old ID that happens to alias a surviving processor is
// indistinguishable from a genuine request for it and is served as such.
// ID translation is the caller's responsibility, exactly as with any
// resharding. For a swap whose ingest stall is bounded by one shard's
// migration instead of the whole operation, see ReconfigureRolling.
func (c *Cluster) Reconfigure(d topo.Diff) (ReconfigStats, error) {
	var rs ReconfigStats
	if !c.reconfiguring.CompareAndSwap(false, true) {
		return rs, ErrReconfigInProgress
	}
	defer c.reconfiguring.Store(false)
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed.Load() {
		return rs, ErrClosed
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	start := time.Now()
	if o := c.obs; o != nil {
		o.Flight.Record(obs.EvReconfig, -1, obs.PhaseBegin, 0, 0)
	}

	oldTree := c.t
	mig, changed, err := c.planLocked(d)
	if err != nil {
		return rs, err
	}
	rs.PlanElapsed = time.Since(start)
	rs.fillPlan(c, mig)

	// Swap the topology and the epoch machinery. The migration's solver
	// already ran a full Solve on the remapped frequencies, so the epoch
	// pipeline continues with incremental Resolve from here.
	c.installEpochState(mig, mig.Remap.Workload(c.prev), newIsLeaf(mig.Tree))

	// Rebuild each shard on the new tree. The gate is held, so the live
	// copy sets the projector sees are exactly the plan snapshot.
	proj := topo.NewProjector(oldTree, mig.Tree, mig.Remap)
	for si, sh := range c.shards {
		sh.mu.Lock()
		c.migrateShard(sh, si, mig, proj, &rs)
		sh.mu.Unlock()
	}

	rs.Elapsed = time.Since(start)
	rs.MaxIngestStall = rs.Elapsed
	if o := c.obs; o != nil {
		// Stop-the-world: the whole gated window is one ingest stall.
		o.ReconfigStall.Observe(rs.Elapsed.Nanoseconds())
	}
	c.finishReconfigLocked(&rs, changed, mig.Congestion)
	return rs, nil
}

// ReconfigureRolling applies a topology diff as a staged (rolling) swap:
// the end state is bit-identical to Reconfigure on a quiesced cluster,
// but ingestion is never blocked for longer than one shard's migration
// (plus two brief quiesce windows that publish and commit the roll) —
// the measured bound comes back in ReconfigStats.MaxIngestStall.
//
// The cluster double-buffers the topology for the duration: planning
// (diff, migration solve, projection tables) runs with ingestion at full
// speed; then the roll state is published under a quiesce and shards
// migrate onto the new tree one at a time, each under only its own lock.
// Ingest keeps accepting OLD node IDs throughout — batches landing on
// not-yet-migrated shards serve against the old tree as if nothing were
// happening, while migrated shards translate each request across the
// remap, redirecting traffic addressed to removed processors to their
// nearest surviving leaf (Migration.LeafFallback) so every request is
// served and conserved mid-swap. A final quiesce commits the new tree as
// the cluster's addressing space; from then on callers must use NEW IDs,
// translating via ReconfigStats.Remap exactly as with Reconfigure.
//
// Mid-roll, load accessors (EdgeLoad, ServiceLoad, MaxEdgeLoad,
// TotalLoad) report in the NEW tree's edge space — un-migrated shards'
// loads are projected forward through the remap, with loads on doomed
// edges omitted exactly as they will be dropped at migration — and Tree
// returns the new tree, so (Tree, EdgeLoad) stay mutually consistent at
// every instant. Copies reports per-shard state and may mix old- and
// new-tree IDs while the roll is in flight.
//
// Epoch passes pause for the duration (the roll holds the epoch lock and
// epoch-crossing Ingest calls skip the inline pass while one is in
// flight); drift recorded mid-roll is carried across the rebuild and
// picked up by the next pass. A concurrent Reconfigure or
// ReconfigureRolling fails fast with ErrReconfigInProgress — never
// queues, never deadlocks.
func (c *Cluster) ReconfigureRolling(d topo.Diff) (ReconfigStats, error) {
	rs := ReconfigStats{Rolling: true}
	if !c.reconfiguring.CompareAndSwap(false, true) {
		return rs, ErrReconfigInProgress
	}
	defer c.reconfiguring.Store(false)
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if c.closed.Load() {
		return rs, ErrClosed
	}
	start := time.Now()

	// Plan with ingestion running: the drift fold and migration solve see
	// a consistent snapshot (tracker rows are read under shard locks), and
	// anything recorded after it is either carried across the rebuild or
	// folded by a later epoch pass.
	oldTree := c.t
	mig, changed, err := c.planLocked(d)
	if err != nil {
		return rs, err
	}
	rs.PlanElapsed = time.Since(start)
	rs.fillPlan(c, mig)

	// The commit work that would otherwise sit inside the final quiesce
	// window is precomputed here, outside any gate: c.prev and c.isLeaf
	// are only ever written under epochMu, which we hold.
	newPrev := mig.Remap.Workload(c.prev)
	isLeaf := newIsLeaf(mig.Tree)

	// Publish the roll. From here every gated reader sees the
	// double-buffered state: partition stops aliasing caller batches,
	// migrated shards translate IDs, load accessors project forward.
	roll := &rollState{newTree: mig.Tree, remap: mig.Remap, fallback: mig.LeafFallback}
	var maxStall time.Duration
	// Every window during which ingestion could stall — the publish
	// quiesce, each shard's swap, the commit quiesce — is one histogram
	// observation and one flight-recorder phase event, so a p99 spike
	// during a roll is attributable to the exact shard that caused it.
	stall := func(t0 time.Time, phase int64, shard int32) {
		d := time.Since(t0)
		if d > maxStall {
			maxStall = d
		}
		if o := c.obs; o != nil {
			o.ReconfigStall.Observe(int64(d))
			o.Flight.Record(obs.EvReconfig, shard, phase, int64(d), 0)
		}
	}
	t0 := time.Now()
	c.quiesce(func() { c.roll = roll })
	stall(t0, obs.PhaseBegin, -1)

	// Migrate one shard at a time, each under only its own lock: a
	// concurrent Ingest stalls only if it owns requests for the shard
	// being swapped, and only for that shard's rebuild. The projector
	// projects each object's LIVE copy set at its shard's swap instant —
	// threshold dynamics that ran since the plan snapshot migrate as they
	// are, never rolled back to the snapshot (on a quiesced cluster the
	// live sets ARE the snapshot, giving bit-identity with Reconfigure).
	proj := topo.NewProjector(oldTree, mig.Tree, mig.Remap)
	for si, sh := range c.shards {
		t0 = time.Now()
		sh.mu.Lock()
		c.migrateShard(sh, si, mig, proj, &rs)
		sh.onNew = true
		sh.mu.Unlock()
		stall(t0, obs.PhaseShard, int32(si))
		if c.rollHook != nil {
			c.rollHook(si + 1)
		}
	}

	// Commit: the new tree becomes the cluster's addressing space and the
	// roll state disappears. onNew is cleared under the full gate (not
	// shard locks): gated readers synchronize via the gate itself.
	t0 = time.Now()
	c.quiesce(func() {
		c.installEpochState(mig, newPrev, isLeaf)
		c.roll = nil
		for _, sh := range c.shards {
			sh.onNew = false
		}
	})
	stall(t0, obs.PhaseCommit, -1)

	rs.Elapsed = time.Since(start)
	rs.MaxIngestStall = maxStall
	c.finishReconfigLocked(&rs, changed, mig.Congestion)
	return rs, nil
}

// planLocked folds outstanding drift, snapshots every object's live copy
// set, and plans the migration (caller holds epochMu). On a failed plan
// nothing has been swapped and the cluster keeps serving on the old
// topology — but the drift fold already mutated solver workload rows
// whose changed list is dropped here, and the solver's incremental
// contract forbids Resolve over mutated rows it was not told about; the
// solver is disarmed so the next epoch pass runs a full Solve, which is
// always valid.
func (c *Cluster) planLocked(d topo.Diff) (mig *topo.Migration, drifted int, err error) {
	changed := c.collectDriftLocked()
	sets := make([][]tree.NodeID, c.numObjects)
	for si, sh := range c.shards {
		sh.mu.Lock()
		for x := si; x < c.numObjects; x += len(c.shards) {
			sets[x] = sh.strat.Copies(x)
		}
		sh.mu.Unlock()
	}
	mig, err = topo.Migrate(c.t, d, c.w, sets, topo.Options{Parallelism: c.opts.Parallelism})
	if err != nil {
		c.solved = false
		return nil, 0, fmt.Errorf("serve: reconfigure: %w", err)
	}
	return mig, len(changed), nil
}

// fillPlan copies the plan-derived counters into the stats.
func (rs *ReconfigStats) fillPlan(c *Cluster, mig *topo.Migration) {
	rs.Remap = mig.Remap
	added := countAdded(mig.Remap)
	rs.RemovedNodes = c.t.Len() - len(mig.Remap.NodeBack) + added
	rs.AddedNodes = added
}

// installEpochState swaps the epoch machinery onto the migration's tree
// (caller holds epochMu; the stop-the-world path additionally holds the
// gate, the rolling path runs it inside the commit quiesce).
func (c *Cluster) installEpochState(mig *topo.Migration, prev *workload.W, isLeaf []bool) {
	c.t = mig.Tree
	c.solver = mig.Solver
	c.w = mig.W
	c.prev = prev
	c.solved = true
	c.isLeaf = isLeaf
}

func newIsLeaf(t *tree.Tree) []bool {
	isLeaf := make([]bool, t.Len())
	for _, v := range t.Leaves() {
		isLeaf[v] = true
	}
	return isLeaf
}

// migrateShard rebuilds one shard on the migration's tree (caller holds
// sh.mu and epochMu): a fresh strategy and tracker with the old load
// history, request counts, frequency rows and un-drained drift flags
// carried across the remap, then the two-phase adoption — the projected
// live copy set first (first-touch, free: the data is physically there),
// the re-solved target second (priced movement from the survivors).
// Loads on removed edges are dropped with the hardware and accounted in
// rs.DroppedLoad / rs.DroppedServiceLoad.
func (c *Cluster) migrateShard(sh *shard, si int, mig *topo.Migration, proj *topo.Projector, rs *ReconfigStats) {
	edgeLoad := sh.strat.EdgeLoad
	moveLoad := sh.strat.MoveLoad()
	var dl, dc int64
	for e, l := range edgeLoad {
		if mig.Remap.Edge[e] == tree.NoEdge {
			dl += l
			dc += l - moveLoad[e]
		}
	}
	rs.DroppedLoad += dl
	rs.DroppedServiceLoad += dc
	if b := sh.obsb; b != nil {
		// Same critical section as the drop itself, so the obs drop
		// counters and the conservation ledger move together.
		b.Add(obs.SlotDroppedLoad, dl)
		b.Add(obs.SlotDroppedCost, dc)
	}
	// The options were validated at NewCluster, so MustNew cannot panic.
	ns := dynamic.MustNew(mig.Tree, c.numObjects, c.dynOpts())
	ns.ImportLoads(
		mig.Remap.EdgeLoads(edgeLoad),
		mig.Remap.EdgeLoads(moveLoad),
		sh.strat.Requests(),
	)
	ns.ImportOps(sh.strat.Ops())
	carried := sh.tracker.DrainDrifted(nil)
	nt := dynamic.NewOfflineTrackerWith(mig.Tree, mig.Remap.Workload(sh.tracker.Workload()))
	nt.MarkDrifted(carried)
	for x := si; x < c.numObjects; x += len(c.shards) {
		p, recovered := proj.Project(sh.strat.Copies(x))
		if len(p) > 0 {
			ns.AdoptCopySet(x, p)
			if recovered {
				rs.Recovered++
			} else {
				rs.Projected++
			}
		}
		if t := mig.Targets[x]; len(t) > 0 {
			rs.Moved += ns.AdoptCopySet(x, t)
		}
	}
	sh.strat = ns
	sh.tracker = nt
}

// finishReconfigLocked books the completed reconfiguration into the
// cluster stats and epoch log (caller holds epochMu; every shard is on
// the new tree).
func (c *Cluster) finishReconfigLocked(rs *ReconfigStats, drifted int, congestion float64) {
	c.stats.Epochs++
	c.stats.Reconfigs++
	c.stats.Drifted += int64(drifted)
	c.stats.AdoptMoved += rs.Moved
	c.stats.ResolveTime += rs.Elapsed
	c.stats.DroppedLoad += rs.DroppedLoad
	c.stats.DroppedServiceLoad += rs.DroppedServiceLoad
	c.epochLog = append(c.epochLog, EpochStat{
		Epoch:            c.stats.Epochs,
		Requests:         c.served.Load(),
		Drifted:          drifted,
		Moved:            rs.Moved,
		StaticCongestion: congestion,
		MaxEdgeLoad:      c.maxEdgeLoadLocked(),
		ResolveNs:        rs.Elapsed.Nanoseconds(),
		Trigger:          TriggerManual,
	})
	if o := c.obs; o != nil {
		// A reconfiguration is an epoch-like pass: observing it here keeps
		// the epoch histogram's count equal to Stats.Epochs, and every
		// epoch-log entry paired with one EvEpoch flight event.
		o.EpochPass.Observe(rs.Elapsed.Nanoseconds())
		o.Flight.Record(obs.EvEpoch, -1, triggerCode(TriggerManual), int64(drifted), rs.Moved)
		o.Flight.Record(obs.EvReconfig, -1, obs.PhaseCommit,
			int64(rs.MaxIngestStall), rs.DroppedServiceLoad)
	}
}

// countAdded counts remap entries for freshly grafted (surviving) nodes.
func countAdded(m *topo.Remap) int {
	n := 0
	for _, v := range m.NodeBack {
		if v == tree.None {
			n++
		}
	}
	return n
}
