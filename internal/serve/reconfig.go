package serve

import (
	"errors"
	"fmt"
	"time"

	"hbn/internal/dynamic"
	"hbn/internal/topo"
	"hbn/internal/tree"
)

// ReconfigStats summarizes one completed Reconfigure call.
type ReconfigStats struct {
	// Elapsed is the wall time the cluster spent reconfiguring (ingestion
	// is blocked for this long).
	Elapsed time.Duration
	// RemovedNodes / AddedNodes count the node difference (removals
	// include pruned degenerate buses).
	RemovedNodes, AddedNodes int
	// Projected counts objects that kept at least one surviving copy;
	// Recovered counts objects whose copies were all lost and were
	// restored at the nearest surviving leaf.
	Projected, Recovered int
	// Moved is the adoption-priced migration distance: each re-solved copy
	// charged its tree distance to the object's nearest surviving copy.
	Moved int64
	// Remap translates old IDs onto the new topology, so callers can
	// project in-flight traces, external load tables, or monitoring state
	// the same way the cluster did.
	Remap *topo.Remap
}

// Reconfigure applies a topology diff to the live cluster: the network is
// rebuilt through topo.Apply, and every layer of serving state migrates
// across the ID remap — observed frequencies (cluster and per-shard
// tracker rows), per-shard edge-load and request accounting (surviving
// edges keep their history; removed edges' loads are dropped with the
// hardware), and every object's copy set. Copies on surviving nodes stay
// exactly where they are (minimal movement); objects whose copies were
// all lost are restored at the surviving leaf nearest to the lost set;
// then one epoch-style pass adopts the placement freshly solved on the
// remapped frequencies, pricing the migration through the same
// AdoptCopySet movement account as every epoch pass (Stats.AdoptMoved).
// The epoch solver is re-armed on the new tree, so subsequent passes
// continue incrementally with Resolve.
//
// Reconfigure is safe under concurrent Ingest and background epoch
// passes: it write-acquires the ingest gate (waiting out in-flight
// batches and blocking new ones for the duration) and holds the epoch
// lock. Requests ingested after it returns must use NEW node IDs —
// translate in-flight traffic through the returned ReconfigStats.Remap.
// The renumbering is dense, so the cluster can only reject stale IDs
// that fall outside the new tree or on a bus; an untranslated old ID
// that happens to alias a surviving processor is indistinguishable from
// a genuine request for it and is served as such. ID translation is the
// caller's responsibility, exactly as with any resharding.
func (c *Cluster) Reconfigure(d topo.Diff) (ReconfigStats, error) {
	var rs ReconfigStats
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed.Load() {
		return rs, errors.New("serve: cluster is closed")
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	start := time.Now()

	// Fold all outstanding drift on the old topology first, so the
	// migration re-solves the complete observed history.
	changed := c.collectDriftLocked()

	// Snapshot every object's live copy set from its owner shard.
	sets := make([][]tree.NodeID, c.numObjects)
	for si, sh := range c.shards {
		sh.mu.Lock()
		for x := si; x < c.numObjects; x += len(c.shards) {
			sets[x] = sh.strat.Copies(x)
		}
		sh.mu.Unlock()
	}

	mig, err := topo.Migrate(c.t, d, c.w, sets, topo.Options{Parallelism: c.opts.Parallelism})
	if err != nil {
		// Nothing has been swapped and the cluster keeps serving on the
		// old topology — but the drift fold above already mutated solver
		// workload rows whose changed list we are about to drop, and the
		// solver's incremental contract forbids Resolve over mutated rows
		// it was not told about. Disarm it: the next epoch pass runs a
		// full Solve, which is always valid.
		c.solved = false
		return rs, fmt.Errorf("serve: reconfigure: %w", err)
	}
	rs.Remap = mig.Remap
	added := countAdded(mig.Remap)
	rs.RemovedNodes = c.t.Len() - len(mig.Remap.NodeBack) + added
	rs.AddedNodes = added
	rs.Recovered = len(mig.Recovered)

	// Swap the topology and the epoch machinery. The migration's solver
	// already ran a full Solve on the remapped frequencies, so the epoch
	// pipeline continues with incremental Resolve from here.
	oldPrev := c.prev
	c.t = mig.Tree
	c.solver = mig.Solver
	c.w = mig.W
	c.prev = mig.Remap.Workload(oldPrev)
	c.solved = true
	c.isLeaf = make([]bool, c.t.Len())
	for _, v := range c.t.Leaves() {
		c.isLeaf[v] = true
	}

	// Rebuild each shard on the new tree: fresh strategy and tracker with
	// the old load history, request counts and frequency rows carried
	// across the remap, then the two-phase adoption — survivors first
	// (first-touch, free: the data is physically there), the re-solved
	// target second (priced movement from the survivors).
	for si, sh := range c.shards {
		sh.mu.Lock()
		ns := dynamic.New(c.t, c.numObjects, dynamic.Options{Threshold: c.opts.Threshold})
		ns.ImportLoads(
			mig.Remap.EdgeLoads(sh.strat.EdgeLoad),
			mig.Remap.EdgeLoads(sh.strat.MoveLoad()),
			sh.strat.Requests(),
		)
		nt := dynamic.NewOfflineTrackerWith(c.t, mig.Remap.Workload(sh.tracker.Workload()))
		for x := si; x < c.numObjects; x += len(c.shards) {
			if p := mig.Projected[x]; len(p) > 0 {
				ns.AdoptCopySet(x, p)
				rs.Projected++
			}
			if t := mig.Targets[x]; len(t) > 0 {
				rs.Moved += ns.AdoptCopySet(x, t)
			}
		}
		sh.strat = ns
		sh.tracker = nt
		sh.mu.Unlock()
	}
	rs.Projected -= rs.Recovered // recovery restores count separately

	rs.Elapsed = time.Since(start)
	c.stats.Epochs++
	c.stats.Reconfigs++
	c.stats.Drifted += int64(len(changed))
	c.stats.AdoptMoved += rs.Moved
	c.stats.ResolveTime += rs.Elapsed
	c.epochLog = append(c.epochLog, EpochStat{
		Epoch:            c.stats.Epochs,
		Requests:         c.served.Load(),
		Drifted:          len(changed),
		Moved:            rs.Moved,
		StaticCongestion: mig.Congestion,
		MaxEdgeLoad:      c.maxEdgeLoadLocked(),
		ResolveNs:        rs.Elapsed.Nanoseconds(),
	})
	return rs, nil
}

// countAdded counts remap entries for freshly grafted (surviving) nodes.
func countAdded(m *topo.Remap) int {
	n := 0
	for _, v := range m.NodeBack {
		if v == tree.None {
			n++
		}
	}
	return n
}
