package serve

import (
	"math/rand"
	"path/filepath"
	"testing"

	"hbn/internal/obs"
	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// obsTotals reads the obs-side ledger of a cluster.
func obsTotals(c *Cluster) (events, cost, droppedLoad, droppedCost int64) {
	o := c.Obs()
	return o.Shards.Total(obs.SlotEvents), o.Shards.Total(obs.SlotCost),
		o.Shards.Total(obs.SlotDroppedLoad), o.Shards.Total(obs.SlotDroppedCost)
}

// checkReconciled asserts the obs counters equal the conservation
// ledger exactly — the invariant the chaos harness re-checks after
// every scenario.
func checkReconciled(t *testing.T, c *Cluster) {
	t.Helper()
	st := c.Stats()
	ev, cost, dl, dc := obsTotals(c)
	if ev != st.Requests {
		t.Fatalf("obs events %d != Stats.Requests %d", ev, st.Requests)
	}
	if cost != st.ServiceCost {
		t.Fatalf("obs cost %d != Stats.ServiceCost %d", cost, st.ServiceCost)
	}
	if dl != st.DroppedLoad {
		t.Fatalf("obs dropped load %d != Stats.DroppedLoad %d", dl, st.DroppedLoad)
	}
	if dc != st.DroppedServiceLoad {
		t.Fatalf("obs dropped cost %d != Stats.DroppedServiceLoad %d", dc, st.DroppedServiceLoad)
	}
	if fires := c.Obs().Global.Load(obs.SlotDriftFires); fires != st.DriftEpochs {
		t.Fatalf("obs drift fires %d != Stats.DriftEpochs %d", fires, st.DriftEpochs)
	}
	if n := c.Obs().EpochPass.Count(); n != st.Epochs {
		t.Fatalf("epoch histogram count %d != Stats.Epochs %d", n, st.Epochs)
	}
}

// TestObsLedgerReconciliation drives a cluster through epochs, a drift
// trigger, a reconfiguration that drops hardware (and load with it), and
// a rolling swap, checking after each stage that the obs counters and
// the conservation ledger agree exactly.
func TestObsLedgerReconciliation(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 48
	trace := workload.DriftingZipf(rng, tr, objects, 24000, 4, 1.0, 0.25)
	c, err := NewCluster(tr, objects, Options{
		Shards: 3, EpochRequests: 4000, Threshold: 3,
		DriftThreshold: 0.05, DriftCheckRequests: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	half := len(trace) / 2
	for lo := 0; lo < half; lo += 512 {
		hi := min(lo+512, half)
		if _, err := c.Ingest(trace[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	checkReconciled(t, c)

	// Stop-the-world reconfigure removing one ring switch: loads on its
	// edges are dropped; the obs drop counters must move in lockstep.
	doomed := tree.NodeID(1 + 2*(4+1))
	if _, err := c.Reconfigure(topo.Diff{Remove: []tree.NodeID{doomed}}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DroppedLoad == 0 {
		t.Fatal("expected the reconfigure to drop load (test premise)")
	}
	checkReconciled(t, c)

	// Keep serving on the new tree (remap the trace), then roll back in a
	// grafted replacement and check again.
	for lo := half; lo < len(trace); lo += 512 {
		hi := min(lo+512, len(trace))
		batch := append([]Request(nil), trace[lo:hi]...)
		ok := batch[:0]
		for _, r := range batch {
			if int(r.Node) < len(c.isLeaf) && c.isLeaf[r.Node] {
				ok = append(ok, r)
			}
		}
		if len(ok) == 0 {
			continue
		}
		if _, err := c.Ingest(ok); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.ReconfigureRolling(topo.Diff{}); err != nil {
		t.Fatal(err)
	}
	checkReconciled(t, c)

	// Flight recorder saw the structural story: at least one epoch event
	// and both reconfigurations' phases.
	var epochs, reconfigs int
	for _, ev := range c.Obs().Flight.Events(nil) {
		switch ev.Kind {
		case obs.EvEpoch:
			epochs++
		case obs.EvReconfig:
			reconfigs++
		}
	}
	if epochs == 0 || reconfigs == 0 {
		t.Fatalf("flight recorder missing events: %d epoch, %d reconfig", epochs, reconfigs)
	}
	// And the strategies reported structural decisions.
	ops := c.OpCounts()
	if ops.Materializations == 0 || ops.Adoptions == 0 {
		t.Fatalf("op counts empty: %+v", ops)
	}
}

// TestObsIngestHistogram checks the batch-apply histogram advances with
// each Ingest and its count matches the number of batches booked.
func TestObsIngestHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := tree.SCICluster(3, 3, 8, 4)
	trace := workload.DriftingZipf(rng, tr, 16, 4096, 2, 1.0, 0.05)
	c, err := NewCluster(tr, 16, Options{Shards: 2, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	batches := int64(0)
	for lo := 0; lo+256 <= len(trace); lo += 256 {
		if _, err := c.Ingest(trace[lo : lo+256]); err != nil {
			t.Fatal(err)
		}
		batches++
	}
	s := c.Obs().IngestBatch.Snapshot()
	if s.Count != batches {
		t.Fatalf("ingest histogram count %d, want %d", s.Count, batches)
	}
	if s.Max <= 0 || s.Min < 0 || s.Quantile(0.99) < s.Quantile(0.5) {
		t.Fatalf("degenerate latency snapshot: %+v", s)
	}
	// Per-shard batch counters: each Ingest touches at most Shards
	// shards, and every batch books exactly once per non-empty partition.
	if got := c.Obs().Shards.Total(obs.SlotBatches); got < batches || got > 2*batches {
		t.Fatalf("shard batch bookings %d outside [%d,%d]", got, batches, 2*batches)
	}
}

// TestNoTelemetry pins the disable switch used by the overhead-guard
// baseline: no registry, and serving still works.
func TestNoTelemetry(t *testing.T) {
	tr := tree.SCICluster(3, 3, 8, 4)
	c, err := NewCluster(tr, 8, Options{Threshold: 3, NoTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Obs() != nil {
		t.Fatal("Obs() should be nil with NoTelemetry")
	}
	leaf := tr.Leaves()[0]
	if _, err := c.Ingest([]Request{{Object: 1, Node: leaf, Write: false}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reconfigure(topo.Diff{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(filepath.Join(t.TempDir(), "s.hbn")); err != nil {
		t.Fatal(err)
	}
}

// TestObsRestoreSeeding: a restored cluster's obs ledger must reconcile
// with the restored conservation ledger immediately, and keep
// reconciling as serving continues.
func TestObsRestoreSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 32
	trace := workload.DriftingZipf(rng, tr, objects, 16000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 2, EpochRequests: 3000, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	half := len(trace) / 2
	for lo := 0; lo < half; lo += 512 {
		if _, err := c.Ingest(trace[lo:min(lo+512, half)]); err != nil {
			t.Fatal(err)
		}
	}
	// Drop some hardware so the restored image carries dropped-load state.
	doomed := tree.NodeID(1 + 2*(4+1))
	if _, err := c.Reconfigure(topo.Diff{Remove: []tree.NodeID{doomed}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state.hbn")
	if _, err := c.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	c.Close()

	r, info, err := Restore(path, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.Fallback {
		t.Fatal("unexpected fallback restore")
	}
	checkReconciled(t, r)
	// The restore itself is on the flight record.
	found := false
	for _, ev := range r.Obs().Flight.Events(nil) {
		if ev.Kind == obs.EvRecovery && ev.B == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvRecovery flight event after Restore")
	}
	// Serving continues on the restored cluster; the ledgers keep moving
	// together. (Restored tree lost nodes; filter the trace.)
	for lo := half; lo < len(trace); lo += 512 {
		batch := append([]Request(nil), trace[lo:min(lo+512, len(trace))]...)
		ok := batch[:0]
		for _, req := range batch {
			if int(req.Node) < len(r.isLeaf) && r.isLeaf[req.Node] {
				ok = append(ok, req)
			}
		}
		if len(ok) == 0 {
			continue
		}
		if _, err := r.Ingest(ok); err != nil {
			t.Fatal(err)
		}
	}
	checkReconciled(t, r)
}
