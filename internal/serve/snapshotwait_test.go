package serve

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hbn/internal/topo"
	"hbn/internal/workload"
)

// SnapshotWait bridges "snapshot now" intent and the cluster's fail-fast
// reconfig flag: it retries Snapshot across ErrReconfigInProgress windows
// with a bounded, doubling backoff instead of queueing behind the roll.
func TestSnapshotWait(t *testing.T) {
	tr := testTrees(rand.New(rand.NewSource(3)))[3].tr
	const objects = 32
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 2000, 2, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: 500, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ingestAll(t, c, trace, 256)
	dir := t.TempDir()

	t.Run("idle cluster succeeds on the first attempt", func(t *testing.T) {
		ss, err := c.SnapshotWait(filepath.Join(dir, "a.hbn"), 5, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Seq == 0 {
			t.Fatal("no sequence number on a successful snapshot")
		}
	})

	// With the reconfig flag held for the whole call, every attempt budget
	// surfaces ErrReconfigInProgress — never a hang — and a non-positive
	// budget is normalized to a single attempt rather than zero.
	busyCases := []struct {
		name     string
		attempts int
	}{
		{"zero attempts normalizes to one", 0},
		{"negative attempts normalizes to one", -3},
		{"single attempt", 1},
		{"several attempts exhaust", 3},
	}
	for _, tc := range busyCases {
		t.Run(tc.name, func(t *testing.T) {
			c.reconfiguring.Store(true)
			defer c.reconfiguring.Store(false)
			if _, err := c.SnapshotWait(filepath.Join(dir, "busy.hbn"), tc.attempts, 100*time.Microsecond); !errors.Is(err, ErrReconfigInProgress) {
				t.Fatalf("got %v, want ErrReconfigInProgress", err)
			}
		})
	}

	t.Run("outlasts a racing rolling reconfiguration", func(t *testing.T) {
		release := make(chan struct{})
		entered := make(chan struct{})
		var once sync.Once
		c.rollHook = func(int) {
			once.Do(func() { close(entered) })
			<-release
		}
		defer func() { c.rollHook = nil }()

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.ReconfigureRolling(topo.Diff{}); err != nil {
				t.Errorf("rolling reconfigure: %v", err)
			}
		}()
		<-entered

		// Mid-roll, a plain Snapshot fails fast; SnapshotWait with budget
		// left keeps retrying and lands once the roll releases.
		if _, err := c.Snapshot(filepath.Join(dir, "mid.hbn")); !errors.Is(err, ErrReconfigInProgress) {
			t.Fatalf("plain snapshot mid-roll: got %v, want ErrReconfigInProgress", err)
		}
		timer := time.AfterFunc(20*time.Millisecond, func() { close(release) })
		defer timer.Stop()
		ss, err := c.SnapshotWait(filepath.Join(dir, "after.hbn"), 64, time.Millisecond)
		wg.Wait()
		if err != nil {
			t.Fatalf("SnapshotWait across the roll: %v", err)
		}
		if ss.Seq == 0 {
			t.Fatal("no sequence number after the roll cleared")
		}
	})
}
