package serve

import (
	"errors"
	"math"
	"testing"

	"hbn/internal/tree"
)

// Every out-of-range Options value is rejected through the typed
// sentinel — errors.Is(err, ErrBadOptions) is the contract callers branch
// on — and is never coerced into something servable. The one constraint
// validate alone cannot see is cross-field: a drift threshold with no
// check cadence and no epoch cadence to derive one from would arm a
// trigger that can never fire, so NewCluster refuses it too.
func TestNewClusterRejectsBadOptions(t *testing.T) {
	tr := tree.SCICluster(2, 3, 16, 8)
	cases := []struct {
		name string
		opts Options
		bad  bool
	}{
		{"zero threshold", Options{Threshold: 0}, true},
		{"negative threshold", Options{Threshold: -2}, true},
		{"negative write budget", Options{Threshold: 4, WriteBudget: -1}, true},
		{"negative epoch cadence", Options{Threshold: 4, EpochRequests: -100}, true},
		{"decay shift discards everything", Options{Threshold: 4, DecayShift: 64}, true},
		{"NaN drift threshold", Options{Threshold: 4, DriftThreshold: math.NaN()}, true},
		{"negative drift threshold", Options{Threshold: 4, DriftThreshold: -0.5}, true},
		{"negative drift cadence", Options{Threshold: 4, DriftThreshold: 0.2, DriftCheckRequests: -1}, true},
		{"drift trigger with no derivable cadence", Options{Threshold: 4, DriftThreshold: 0.2}, true},
		{"minimal valid", Options{Threshold: 1}, false},
		{"derived drift cadence", Options{Threshold: 4, EpochRequests: 800, DriftThreshold: 0.2}, false},
		{"explicit drift cadence", Options{Threshold: 4, DriftThreshold: 0.2, DriftCheckRequests: 50}, false},
		{"full opt-in", Options{Threshold: 8, EpochRequests: 400, DecayShift: 1,
			BandwidthAware: true, WriteBudget: 8, DriftThreshold: 0.15, DriftCheckRequests: 25}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(tr, 8, tc.opts)
			if tc.bad {
				if !errors.Is(err, ErrBadOptions) {
					t.Fatalf("got %v, want ErrBadOptions", err)
				}
			} else if err != nil {
				t.Fatalf("valid options rejected: %v", err)
			}
		})
	}
}
