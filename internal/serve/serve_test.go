package serve

import (
	"math/rand"
	"testing"

	"hbn/internal/dynamic"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// testTrees is the topology matrix the serving properties run on.
func testTrees(rng *rand.Rand) []struct {
	name string
	tr   *tree.Tree
} {
	type instance = struct {
		name string
		tr   *tree.Tree
	}
	out := []instance{
		{"star", tree.Star(8, 8)},
		{"kary", tree.BalancedKAry(2, 3, 0)},
		{"caterpillar", tree.Caterpillar(6, 3, 8, 8)},
		{"sci", tree.SCICluster(3, 4, 16, 8)},
	}
	for i := 0; i < 2; i++ {
		out = append(out, instance{"random", tree.Random(rng, 15+rng.Intn(40), 4, 0.4, 8)})
	}
	return out
}

// The sharding is exact: with epoch re-solve disabled, a Cluster of ANY
// shard count serves any request sequence with aggregate loads identical
// to one plain dynamic.Strategy serving it sequentially (all per-object
// state is per-object, and per-object request order is preserved). This
// subsumes the acceptance criterion's shards=1, epoch=∞ case.
func TestClusterMatchesPlainStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, inst := range testTrees(rng) {
		const objects = 9
		reqs := dynamic.RandomSequence(rng, inst.tr, objects, 1500, 0.2)

		ref := dynamic.MustNew(inst.tr, objects, dynamic.Options{Threshold: 2})
		refCost := ref.ServeAll(reqs)

		for _, shards := range []int{1, 2, 4, 7} {
			c, err := NewCluster(inst.tr, objects, Options{Shards: shards, Threshold: 2})
			if err != nil {
				t.Fatal(err)
			}
			var cost int64
			for i := 0; i < len(reqs); i += 97 { // uneven batches
				end := i + 97
				if end > len(reqs) {
					end = len(reqs)
				}
				got, err := c.Ingest(reqs[i:end])
				if err != nil {
					t.Fatal(err)
				}
				cost += got
			}
			if cost != refCost {
				t.Fatalf("%s shards=%d: service cost %d != plain strategy %d", inst.name, shards, cost, refCost)
			}
			edge, service := c.EdgeLoad(), c.ServiceLoad()
			refService := ref.ServiceLoad()
			for e := range edge {
				if edge[e] != ref.EdgeLoad[e] || service[e] != refService[e] {
					t.Fatalf("%s shards=%d edge %d: cluster (%d,%d) != plain (%d,%d)",
						inst.name, shards, e, edge[e], service[e], ref.EdgeLoad[e], refService[e])
				}
			}
			st := c.Stats()
			if st.Requests != int64(len(reqs)) || st.ServiceCost != refCost || st.Epochs != 0 {
				t.Fatalf("%s shards=%d: stats %+v", inst.name, shards, st)
			}
		}
	}
}

// Synchronous epoch re-solve is deterministic: two clusters with the same
// configuration fed the same trace in the same batches agree exactly on
// loads, epochs and adoption movement.
func TestClusterDeterministic(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 12
	trace := workload.DriftingZipf(rand.New(rand.NewSource(5)), tr, objects, 4000, 4, 1.0, 0.05)

	run := func() ([]int64, []EpochStat, Stats) {
		c, err := NewCluster(tr, objects, Options{Shards: 3, EpochRequests: 500, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(trace); i += 250 {
			if _, err := c.Ingest(trace[i : i+250]); err != nil {
				t.Fatal(err)
			}
		}
		return c.EdgeLoad(), c.EpochLog(), c.Stats()
	}
	e1, log1, st1 := run()
	e2, log2, st2 := run()
	st1.ResolveTime, st2.ResolveTime = 0, 0 // wall time is not deterministic
	if st1 != st2 {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("epoch logs differ in length: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		log1[i].ResolveNs, log2[i].ResolveNs = 0, 0
		if log1[i] != log2[i] {
			t.Fatalf("epoch %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	for e := range e1 {
		if e1[e] != e2[e] {
			t.Fatalf("edge %d load differs: %d vs %d", e, e1[e], e2[e])
		}
	}
	if st1.Epochs != 8 {
		t.Fatalf("expected 8 epoch passes for 4000 requests at epoch 500, got %d", st1.Epochs)
	}
}

// The acceptance criterion's core claim: on a drifting-Zipf trace, epoch
// re-solving beats the no-re-solve baseline on max edge load (the
// congestion numerator). Both clusters are identical apart from
// EpochRequests; loads compared exclude adoption transfers by
// construction (booked separately) and include all threshold-driven
// movement.
func TestClusterEpochResolveBeatsNoResolve(t *testing.T) {
	tr := tree.SCICluster(4, 6, 16, 8)
	const objects = 24
	trace := workload.DriftingZipf(rand.New(rand.NewSource(9)), tr, objects, 30000, 6, 1.0, 0.02)

	serveAll := func(epoch int64) *Cluster {
		c, err := NewCluster(tr, objects, Options{Shards: 4, EpochRequests: epoch, Threshold: 6})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(trace); i += 500 {
			if _, err := c.Ingest(trace[i : i+500]); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	resolving := serveAll(1000)
	baseline := serveAll(0)
	rm, bm := resolving.MaxEdgeLoad(), baseline.MaxEdgeLoad()
	t.Logf("max edge load: re-solve %d vs baseline %d (total %d vs %d; %d epochs, %d moved)",
		rm, bm, resolving.TotalLoad(), baseline.TotalLoad(),
		resolving.Stats().Epochs, resolving.Stats().AdoptMoved)
	if rm >= bm {
		t.Fatalf("epoch re-solve should beat the no-re-solve baseline on max edge load: %d >= %d", rm, bm)
	}
	if resolving.Stats().Epochs == 0 {
		t.Fatal("no epoch passes ran")
	}
}

// Adoption pushes the solved static placement into the shards: after a
// read-heavy history and a forced re-solve, the hot readers hold local
// copies and their next reads are free.
func TestClusterAdoptionWarmsState(t *testing.T) {
	tr := tree.BalancedKAry(2, 3, 0)
	leaves := tr.Leaves()
	c, err := NewCluster(tr, 1, Options{Shards: 1, Threshold: 100}) // threshold too high to ever replicate dynamically
	if err != nil {
		t.Fatal(err)
	}
	readers := []tree.NodeID{leaves[0], leaves[1], leaves[len(leaves)-1]}
	var batch []Request
	for i := 0; i < 200; i++ {
		batch = append(batch, Request{Object: 0, Node: readers[i%len(readers)]})
	}
	if _, err := c.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Epochs != 1 || st.Drifted != 1 {
		t.Fatalf("stats after forced resolve: %+v", st)
	}
	// A pure-read workload replicates to every reader: the next read from
	// each reader must be free.
	for _, v := range readers {
		cost, err := c.Ingest([]Request{{Object: 0, Node: v}})
		if err != nil {
			t.Fatal(err)
		}
		if cost != 0 {
			t.Fatalf("read from %d after adoption cost %d, want 0 (copies %v)", v, cost, c.Copies(0))
		}
	}
	log := c.EpochLog()
	if len(log) != 1 || log[0].Drifted != 1 || log[0].Epoch != 1 {
		t.Fatalf("epoch log %+v", log)
	}
}

// A second ResolveNow with no traffic in between is a no-op (no drift, no
// epoch), and an unchanged placement does not move copies.
func TestClusterResolveNoDriftIsNoop(t *testing.T) {
	tr := tree.Star(6, 8)
	c, err := NewCluster(tr, 3, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest([]Request{{Object: 0, Node: 1}, {Object: 1, Node: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Epochs != 1 {
		t.Fatalf("no-drift resolve should not count an epoch: %+v", st)
	}
	// Re-serving the same leaves and re-solving keeps copies in place.
	if _, err := c.Ingest([]Request{{Object: 0, Node: 1}}); err != nil {
		t.Fatal(err)
	}
	before := c.Copies(0)
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Epochs != 2 || st.AdoptMoved != 0 {
		t.Fatalf("unchanged placement should not move copies: %+v (copies %v -> %v)", st, before, c.Copies(0))
	}
}

// Ingest validates its batch up front and rejects bad requests without
// serving anything; a closed cluster rejects everything.
func TestClusterValidationAndClose(t *testing.T) {
	tr := tree.Star(4, 8)
	c, err := NewCluster(tr, 2, Options{Shards: 2, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest([]Request{{Object: 5, Node: 1}}); err == nil {
		t.Fatal("out-of-range object should fail")
	}
	if _, err := c.Ingest([]Request{{Object: 0, Node: 0}}); err == nil {
		t.Fatal("bus-node request should fail")
	}
	// Out-of-range nodes must error, not panic (regression: IsLeaf indexed
	// the node table unchecked).
	if _, err := c.Ingest([]Request{{Object: 0, Node: 99}}); err == nil {
		t.Fatal("out-of-range node should fail")
	}
	if _, err := c.Ingest([]Request{{Object: 0, Node: -1}}); err == nil {
		t.Fatal("negative node should fail")
	}
	if got := c.Stats().Requests; got != 0 {
		t.Fatalf("rejected batches must not serve: %d requests recorded", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if _, err := c.Ingest([]Request{{Object: 0, Node: 1}}); err == nil {
		t.Fatal("ingest after Close should fail")
	}
	if err := c.ResolveNow(); err == nil {
		t.Fatal("resolve after Close should fail")
	}
}

// A background cluster runs its epoch passes on its own goroutine; after
// Close, at least one pass must have happened and conservation holds.
func TestClusterBackgroundEpochs(t *testing.T) {
	tr := tree.BalancedKAry(2, 3, 0)
	const objects = 8
	trace := workload.Diurnal(rand.New(rand.NewSource(3)), tr, objects, 6000, 1500, 0.1)
	c, err := NewCluster(tr, objects, Options{Shards: 2, EpochRequests: 500, Threshold: 2, Background: true})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < len(trace); i += 200 {
		cost, err := c.Ingest(trace[i : i+200])
		if err != nil {
			t.Fatal(err)
		}
		total += cost
	}
	// Flush the last pending trigger deterministically, then stop.
	if err := c.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Epochs == 0 {
		t.Fatal("background loop never resolved")
	}
	if st.Requests != int64(len(trace)) || st.ServiceCost != total {
		t.Fatalf("conservation violated: %+v vs served %d cost %d", st, len(trace), total)
	}
	var sum int64
	for _, l := range c.ServiceLoad() {
		sum += l
	}
	if sum != total {
		t.Fatalf("service load sum %d != returned cost %d", sum, total)
	}
}
