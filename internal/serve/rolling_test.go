package serve

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"hbn/internal/topo"
	"hbn/internal/tree"
	"hbn/internal/workload"
)

// tailRingDiff removes the tail ring of an SCICluster(rings, procs, ...)
// layout — the removal that keeps every stable leaf's ID unchanged.
func tailRingDiff(rings, procs int) topo.Diff {
	return topo.Diff{Remove: []tree.NodeID{tree.NodeID(1 + (rings-1)*(procs+1))}}
}

// On a quiesced cluster a rolling reconfiguration is bit-identical to the
// stop-the-world one: same loads, same copy sets, same movement account,
// same plan counters — only the stall profile differs.
func TestRollingMatchesStopTheWorld(t *testing.T) {
	tr := tree.SCICluster(4, 5, 16, 8)
	const objects = 24
	trace := workload.DriftingZipf(rand.New(rand.NewSource(41)), tr, objects, 6000, 4, 1.0, 0.05)
	mk := func() *Cluster {
		c, err := NewCluster(tr, objects, Options{Shards: 4, Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 256)
		return c
	}
	d := tailRingDiff(4, 5)
	c1, c2 := mk(), mk()
	rsS, err := c1.Reconfigure(d)
	if err != nil {
		t.Fatal(err)
	}
	rsR, err := c2.ReconfigureRolling(d)
	if err != nil {
		t.Fatal(err)
	}
	if rsS.Rolling || !rsR.Rolling {
		t.Fatalf("Rolling flags: stw %v, rolling %v", rsS.Rolling, rsR.Rolling)
	}
	if rsS.MaxIngestStall != rsS.Elapsed {
		t.Fatal("stop-the-world stall must equal its whole elapsed time")
	}
	if rsR.MaxIngestStall <= 0 || rsR.MaxIngestStall > rsR.Elapsed {
		t.Fatalf("rolling stall %v outside (0, %v]", rsR.MaxIngestStall, rsR.Elapsed)
	}
	if rsS.Projected != rsR.Projected || rsS.Recovered != rsR.Recovered ||
		rsS.Moved != rsR.Moved || rsS.RemovedNodes != rsR.RemovedNodes ||
		rsS.DroppedLoad != rsR.DroppedLoad || rsS.DroppedServiceLoad != rsR.DroppedServiceLoad {
		t.Fatalf("plan counters diverge:\nstw  %+v\nroll %+v", rsS, rsR)
	}
	if !slices.Equal(c1.EdgeLoad(), c2.EdgeLoad()) {
		t.Fatal("edge loads diverge from stop-the-world")
	}
	if !slices.Equal(c1.ServiceLoad(), c2.ServiceLoad()) {
		t.Fatal("service loads diverge from stop-the-world")
	}
	for x := 0; x < objects; x++ {
		if !slices.Equal(c1.Copies(x), c2.Copies(x)) {
			t.Fatalf("object %d: copies %v != %v", x, c1.Copies(x), c2.Copies(x))
		}
	}
	s1, s2 := c1.Stats(), c2.Stats()
	if s1 != s2 {
		// ResolveTime is wall time and legitimately differs; blank it.
		s1.ResolveTime, s2.ResolveTime = 0, 0
		if s1 != s2 {
			t.Fatalf("stats diverge: %+v vs %+v", s1, s2)
		}
	}

	// Both clusters keep serving identically on the new tree.
	var resumed []Request
	for _, ev := range trace[:500] {
		if nv := rsS.Remap.Node[ev.Node]; nv != tree.None {
			resumed = append(resumed, Request{Object: ev.Object, Node: nv, Write: ev.Write})
		}
	}
	ingestAll(t, c1, resumed, 128)
	ingestAll(t, c2, resumed, 128)
	if !slices.Equal(c1.EdgeLoad(), c2.EdgeLoad()) {
		t.Fatal("post-swap serving diverges from stop-the-world")
	}
}

// The staged swap's reason to exist: at many shards the longest single
// ingest stall is far below the stop-the-world pause, because planning
// (the migration solve — the dominant cost) happens with ingestion live
// and the gate is only ever held for one shard's rebuild or a bare
// publish/commit barrier. Compared at 64 shards, best-of-3 against
// best-of-3 to shrug off scheduler and GC noise.
func TestRollingStallBoundAt64Shards(t *testing.T) {
	tr := tree.SCICluster(8, 8, 32, 16)
	const objects = 256
	trace := workload.DriftingZipf(rand.New(rand.NewSource(97)), tr, objects, 24000, 6, 1.0, 0.05)
	d := tailRingDiff(8, 8)
	mk := func() *Cluster {
		c, err := NewCluster(tr, objects, Options{Shards: 64, Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace, 512)
		return c
	}
	const trials = 3
	stwPause := make([]int64, 0, trials)
	rollStall := make([]int64, 0, trials)
	for i := 0; i < trials; i++ {
		c1, c2 := mk(), mk()
		rsS, err := c1.Reconfigure(d)
		if err != nil {
			t.Fatal(err)
		}
		rsR, err := c2.ReconfigureRolling(d)
		if err != nil {
			t.Fatal(err)
		}
		stwPause = append(stwPause, rsS.MaxIngestStall.Nanoseconds())
		rollStall = append(rollStall, rsR.MaxIngestStall.Nanoseconds())
	}
	bestSTW, bestRoll := slices.Min(stwPause), slices.Min(rollStall)
	t.Logf("stop-the-world pause %v, rolling max stall %v (best of %d)",
		bestSTW, bestRoll, trials)
	if bestRoll*2 > bestSTW {
		t.Fatalf("rolling stall %dns not well below stop-the-world pause %dns", bestRoll, bestSTW)
	}
}

// Mid-roll serving: with the roll frozen halfway (via the test hook), a
// batch addressed in OLD IDs — including traffic for the doomed ring's
// processors — is accepted and served, half the shards on each tree;
// accessors report consistently in the new ID space; and a second
// reconfiguration of either flavor fails fast with ErrReconfigInProgress.
// After commit the conservation ledger closes exactly:
// Σ ServiceLoad + DroppedServiceLoad == Σ costs Ingest returned.
func TestRollingMidSwapServing(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 16
	doomed := tree.NodeID(1 + 2*(4+1)) // tail ring bus
	trace := workload.DriftingZipf(rand.New(rand.NewSource(63)), tr, objects, 4000, 3, 1.0, 0.05)
	c, err := NewCluster(tr, objects, Options{Shards: 4, Threshold: 3, EpochRequests: 1500})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for lo := 0; lo < len(trace); lo += 200 {
		cost, err := c.Ingest(trace[lo : lo+200])
		if err != nil {
			t.Fatal(err)
		}
		total += cost
	}

	// The mid-roll batch deliberately mixes stable leaves with the doomed
	// ring's processors (old IDs: doomed+1 .. doomed+4).
	mid := make([]Request, 0, 64)
	for i := 0; i < 64; i++ {
		node := tr.Leaves()[i%len(tr.Leaves())]
		if i%4 == 0 {
			node = doomed + 1 + tree.NodeID(i%4)
		}
		mid = append(mid, Request{Object: i % objects, Node: node, Write: i%8 == 0})
	}

	oldEdges := tr.NumEdges()
	fired := 0
	c.rollHook = func(migrated int) {
		if migrated != 2 {
			return
		}
		fired++
		cost, err := c.Ingest(mid)
		if err != nil {
			t.Errorf("mid-roll ingest: %v", err)
			return
		}
		total += cost
		if got := c.Tree().NumEdges(); got == oldEdges {
			t.Error("mid-roll Tree() still reports the old tree")
		}
		if got := len(c.EdgeLoad()); got != c.Tree().NumEdges() {
			t.Errorf("mid-roll EdgeLoad has %d edges, Tree has %d", got, c.Tree().NumEdges())
		}
		if _, err := c.Reconfigure(topo.Diff{}); !errors.Is(err, ErrReconfigInProgress) {
			t.Errorf("concurrent Reconfigure: got %v, want ErrReconfigInProgress", err)
		}
		if _, err := c.ReconfigureRolling(topo.Diff{}); !errors.Is(err, ErrReconfigInProgress) {
			t.Errorf("concurrent ReconfigureRolling: got %v, want ErrReconfigInProgress", err)
		}
	}
	rs, err := c.ReconfigureRolling(topo.Diff{Remove: []tree.NodeID{doomed}})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("roll hook fired %d times at the probe point, want 1", fired)
	}

	if got := c.Stats().Requests; got != int64(len(trace)+len(mid)) {
		t.Fatalf("served %d requests, ingested %d", got, len(trace)+len(mid))
	}
	var serviceSum int64
	for _, l := range c.ServiceLoad() {
		serviceSum += l
	}
	if serviceSum+rs.DroppedServiceLoad != total {
		t.Fatalf("ledger: service %d + dropped %d != returned cost %d",
			serviceSum, rs.DroppedServiceLoad, total)
	}
	for x := 0; x < objects; x++ {
		if len(c.Copies(x)) == 0 {
			t.Fatalf("object %d lost its copies", x)
		}
	}
	// The flag cleared: the next rolling call goes through.
	c.rollHook = nil // the probe batch's old IDs are stale now
	if _, err := c.ReconfigureRolling(topo.Diff{}); err != nil {
		t.Fatalf("post-roll rolling reconfigure: %v", err)
	}
}

// A failed rolling plan disarms the solver exactly like the stop-the-world
// error path: nothing swapped, no roll state leaked, the in-progress flag
// released, and the next epoch pass cold-solves back to bit-identity with
// a cluster that never saw the failed call.
func TestRollingFailureLeavesClusterConsistent(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 20
	trace := workload.DriftingZipf(rand.New(rand.NewSource(77)), tr, objects, 5000, 4, 1.0, 0.05)
	mk := func() *Cluster {
		c, err := NewCluster(tr, objects, Options{Shards: 3, Threshold: 4})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace[:len(trace)/2], 250)
		if err := c.ResolveNow(); err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace[len(trace)/2:], 250)
		return c
	}
	c1, c2 := mk(), mk()
	_, err := c1.ReconfigureRolling(topo.Diff{Remove: []tree.NodeID{0}})
	if !errors.Is(err, topo.ErrRemoveRoot) {
		t.Fatalf("got %v, want topo.ErrRemoveRoot", err)
	}
	if c1.Tree() != tr {
		t.Fatal("failed roll left a foreign tree behind")
	}
	if err := c1.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if err := c2.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(c1.EdgeLoad(), c2.EdgeLoad()) {
		t.Fatal("edge loads diverged after a failed rolling reconfigure")
	}
	for x := 0; x < objects; x++ {
		if !slices.Equal(c1.Copies(x), c2.Copies(x)) {
			t.Fatalf("object %d: copies diverged after a failed rolling reconfigure", x)
		}
	}
	// The flag released: a valid rolling call now succeeds.
	if _, err := c1.ReconfigureRolling(tailRingDiff(3, 4)); err != nil {
		t.Fatal(err)
	}
}

// Degenerate diffs surface as typed errors through the serving layer, so
// callers can classify rejections with errors.Is at the Cluster API
// without string matching. (Table mirrors topo's Apply-level test; here
// the point is that wrapping through Migrate and Reconfigure preserves
// the sentinels.)
func TestReconfigureTypedErrors(t *testing.T) {
	tr := tree.SCICluster(2, 3, 16, 8)
	leaf := tr.Leaves()[0]
	cases := []struct {
		name string
		d    topo.Diff
		want error
	}{
		{"remove root", topo.Diff{Remove: []tree.NodeID{0}}, topo.ErrRemoveRoot},
		{"remove out of range", topo.Diff{Remove: []tree.NodeID{99}}, topo.ErrRemoveRange},
		{"duplicate removal", topo.Diff{Remove: []tree.NodeID{leaf, leaf}}, topo.ErrOverlappingRemove},
		{"overlapping subtrees", topo.Diff{Remove: []tree.NodeID{1, leaf}}, topo.ErrOverlappingRemove},
		{"remove all processors", topo.Diff{Remove: []tree.NodeID{1, 5}}, topo.ErrNoProcessors},
		{"empty removal bad graft", topo.Diff{
			Add: []topo.Graft{{Kind: tree.Processor, Parent: leaf}},
		}, topo.ErrBadGraft},
		{"bad bandwidth", topo.Diff{
			SetBusBandwidth: []topo.BusBandwidth{{Node: leaf, Bandwidth: 3}},
		}, topo.ErrBadBandwidth},
	}
	for _, tc := range cases {
		c, err := NewCluster(tr, 4, Options{Shards: 2, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Reconfigure(tc.d); !errors.Is(err, tc.want) {
			t.Errorf("%s: Reconfigure error %v, want %v", tc.name, err, tc.want)
		}
		if _, err := c.ReconfigureRolling(tc.d); !errors.Is(err, tc.want) {
			t.Errorf("%s: ReconfigureRolling error %v, want %v", tc.name, err, tc.want)
		}
	}
}

// After ANY failed reconfigure flavor the solver is disarmed: the next
// epoch pass must run a full Solve (not an incremental Resolve over the
// silently mutated workload rows). Pinned by arming the solver, failing a
// call, then checking the pass completes and matches a cold-solved twin —
// and that the cluster still accepts a subsequent valid reconfigure.
func TestReconfigureErrorDisarmsThenColdSolves(t *testing.T) {
	tr := tree.SCICluster(3, 4, 16, 8)
	const objects = 12
	trace := workload.DriftingZipf(rand.New(rand.NewSource(13)), tr, objects, 3000, 3, 1.0, 0.05)
	for _, rolling := range []bool{false, true} {
		c, err := NewCluster(tr, objects, Options{Shards: 2, Threshold: 3})
		if err != nil {
			t.Fatal(err)
		}
		ingestAll(t, c, trace[:1500], 250)
		if err := c.ResolveNow(); err != nil { // arm incremental state
			t.Fatal(err)
		}
		ingestAll(t, c, trace[1500:], 250) // fresh drift the failed fold consumes
		bad := topo.Diff{Remove: []tree.NodeID{99}}
		if rolling {
			_, err = c.ReconfigureRolling(bad)
		} else {
			_, err = c.Reconfigure(bad)
		}
		if !errors.Is(err, topo.ErrRemoveRange) {
			t.Fatalf("rolling=%v: got %v, want topo.ErrRemoveRange", rolling, err)
		}
		if c.solved {
			t.Fatalf("rolling=%v: solver still armed after failed reconfigure", rolling)
		}
		if err := c.ResolveNow(); err != nil {
			t.Fatalf("rolling=%v: cold re-solve after failure: %v", rolling, err)
		}
		if !c.solved {
			t.Fatalf("rolling=%v: cold re-solve did not re-arm", rolling)
		}
		if _, err := c.Reconfigure(tailRingDiff(3, 4)); err != nil {
			t.Fatalf("rolling=%v: valid reconfigure after recovery: %v", rolling, err)
		}
	}
}
